"""Command-line interface.

Examples
--------
Allocate a textual IR file with the BFPL allocator and 8 registers::

    repro-alloc allocate --input program.ir --allocator BFPL --registers 8

The allocate command drives the pass-pipeline engine
(:mod:`repro.pipeline`); ``--pipeline`` accepts a declarative spec (a stage
chain, a JSON config, ``ssa``/``non-ssa``, or an allocator name), ``--emit``
selects the output form, and ``--store`` caches allocate-stage results
through the experiment store::

    repro-alloc allocate --input program.ir --allocator NL --registers 4 \
        --emit ir --no-opt --store cache.sqlite

Regenerate a figure of the paper on a reduced corpus::

    repro-alloc figure figure10 --scale 0.5

Run the persistent experiment pipeline — an interrupted or repeated ``sweep``
only computes cells missing from the store, then ``aggregate``/``report``
read the store without re-running any allocator::

    repro-alloc sweep --figure figure9 --scale 0.5 --store results.sqlite
    repro-alloc aggregate --store results.sqlite
    repro-alloc report figure9 --store results.sqlite --format markdown

Inspect a generated corpus::

    repro-alloc corpus --suite eembc --seed 7

Fuzz the whole pipeline with the differential correctness oracle (every
failure is delta-debugged into a minimal reproducer under
``tests/oracle/regressions/``), or replay that corpus::

    repro-alloc oracle --seed 0 --count 500 --jobs 4
    repro-alloc oracle --replay

Trace a run end-to-end (``allocate``/``sweep``/``oracle`` also take
``--trace PATH``), summarize a recorded trace, or compare two bench
payloads for regressions::

    repro-alloc trace program.ir --format chrome -o trace.json
    repro-alloc stats trace.jsonl
    repro-alloc bench-diff BENCH_pipeline.json fresh.json --threshold 0.25

Run the allocation service — a durable job queue + worker pool behind an
HTTP API, with the experiment store as a read-through cache — then submit
work and inspect it::

    repro-alloc serve --store cells.sqlite --port 8713
    repro-alloc submit --input program.ir --allocator NL --registers 4 --wait
    repro-alloc jobs --stats

Exit codes
----------
Every command uses the same three exit codes (pinned by the CLI test
matrix; see :data:`EXIT_OK`):

====  =========================================================
code  meaning
====  =========================================================
0     success (including "checked and passed", "no regression")
1     domain failure: bad input file, infeasible/failed check,
      bench regression, failed/dead service job, unreachable
      server — anything the *work* can be wrong about
2     usage error: unknown flags/commands, malformed argument
      values (argparse's own exit code)
====  =========================================================
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sqlite3
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional, Sequence

from repro.alloc import available_allocators
from repro.alloc.problem import AllocationProblem
from repro.errors import PipelineError, ReproError
from repro.experiments.figures import ALL_FIGURES, FIGURE_SPECS, FigureSpec
from repro.experiments.report import (
    render_cache_split,
    render_figure,
    render_html_report,
    render_markdown_report,
    render_table,
)
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceRecord,
    run_experiment,
    run_streamed_experiment,
)
from repro.experiments.stats import mean_ratio_by, normalize_records
from repro.graphs.io import load_graph
from repro.ir.parser import parse_module
from repro.pipeline import Pipeline, PipelineSpec
from repro.store import open_store
from repro.targets import ALL_TARGETS
from repro.telemetry import (
    Tracer,
    read_jsonl,
    render_text_summary,
    snapshot_to_chrome,
    snapshot_to_jsonl_lines,
    use_tracer,
    write_chrome,
    write_jsonl,
)
from repro.workloads.corpus import CorpusStream, build_corpus
from repro.workloads.suites import SUITES

DEFAULT_TARGET = "st231"

#: the CLI exit-code contract — the single authoritative definition (the
#: module docstring renders it as a table, ``tests/test_cli.py`` pins it
#: across commands).  ``EXIT_USAGE`` is argparse's own code for usage
#: errors; commands never return it directly.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2

#: default port of `repro-alloc serve` (and the submit/jobs --url default).
DEFAULT_SERVICE_PORT = 8713
DEFAULT_SERVICE_URL = f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}"


def _package_version() -> str:
    """Installed distribution version, falling back to the module version."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _error(message: str) -> int:
    """Print a clean error to stderr and return :data:`EXIT_FAILURE`."""
    print(f"repro-alloc: error: {message}", file=sys.stderr)
    return EXIT_FAILURE


def _csv_names(text: str) -> List[str]:
    return [token.strip() for token in text.split(",") if token.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(token) for token in _csv_names(text)]


def _is_graph_json(path: str) -> bool:
    return path.endswith(".json") or path.endswith(".json.gz")


def _build_parser() -> argparse.ArgumentParser:
    """Assemble the argument parser with one sub-command per activity."""
    parser = argparse.ArgumentParser(
        prog="repro-alloc",
        description="Layered register allocation (Diouf, Cohen, Rastello - CGO 2013) reproduction",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    allocate = subparsers.add_parser("allocate", help="allocate a textual IR file or a graph JSON")
    allocate.add_argument("--input", required=True, help="path to a .ir module or a graph .json/.json.gz")
    allocate.add_argument("--allocator", default=None, help=f"one of {available_allocators()} (default BFPL)")
    allocate.add_argument("--registers", type=int, default=None, help="register count (default 8)")
    allocate.add_argument(
        "--target",
        default=None,
        help=f"one of {sorted(ALL_TARGETS)} (default {DEFAULT_TARGET}; ignored for graph JSON inputs)",
    )
    allocate.add_argument(
        "--pipeline",
        default=None,
        help=(
            "pipeline spec: 'ssa'/'non-ssa' (lowering mode), a comma-separated "
            "stage chain (e.g. 'liveness,interference,extract,allocate,verify'), "
            "a JSON config object, or an allocator name"
        ),
    )
    allocate.add_argument(
        "--no-opt",
        action="store_true",
        help="skip the loadstore_opt stage (keep naive spill-everywhere code)",
    )
    allocate.add_argument(
        "--constrain",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "derive machine-model constraints (register classes, "
            "pre-colorings) for this fraction of variables at the extract "
            "stage; restricts --allocator to the constraint-aware family"
        ),
    )
    allocate.add_argument(
        "--emit",
        choices=("ir", "json", "summary"),
        default="summary",
        help="output form: rewritten IR, a JSON run summary, or the classic summary lines",
    )
    allocate.add_argument(
        "--store",
        default=None,
        help="experiment store path; allocate-stage results are cached/reused through it",
    )
    allocate.add_argument(
        "--jobs", type=int, default=1, help="worker processes for multi-function modules"
    )
    allocate.add_argument(
        "--check",
        choices=("off", "boundaries", "each"),
        default=None,
        help=(
            "static machine-verifier enforcement: 'boundaries' checks the "
            "input and final context, 'each' additionally enforces every "
            "pass's requires/preserves contracts (default off)"
        ),
    )
    allocate.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the run (*.json Chrome trace, otherwise JSONL)",
    )

    check = subparsers.add_parser(
        "check", help="statically verify a textual IR module (machine-verifier)"
    )
    check.add_argument("--input", required=True, help="path to a .ir module")
    check.add_argument(
        "--function", default=None, help="restrict the check to one function by name"
    )
    check.add_argument(
        "--ssa",
        action="store_true",
        help="additionally require strict-SSA form (single defs, dominance)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="one line per diagnostic, or a JSON array of diagnostic objects",
    )
    check.add_argument(
        "--select",
        default=None,
        help="comma-separated code prefixes to keep (e.g. 'CFG,SSA001')",
    )
    check.add_argument(
        "--ignore",
        default=None,
        help="comma-separated code prefixes to drop (e.g. 'CFG006')",
    )

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=sorted(ALL_FIGURES), help="figure identifier")
    figure.add_argument("--scale", type=float, default=1.0, help="corpus scale factor")
    figure.add_argument("--seed", type=int, default=2013)
    figure.add_argument("--max-instances", type=int, default=None)
    figure.add_argument(
        "--store",
        default=None,
        help="experiment store path; cached cells are reused and new ones persisted",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run a sweep into a persistent experiment store (resumable)"
    )
    sweep.add_argument("--store", required=True, help="store path (*.sqlite default, *.jsonl for JSONL)")
    sweep.add_argument(
        "--figure",
        choices=sorted(FIGURE_SPECS),
        default=None,
        help="preset suite/target/allocators/registers from a figure's spec",
    )
    sweep.add_argument("--suite", default=None, choices=sorted(SUITES))
    sweep.add_argument("--target", default=None, help="target machine (default: the suite's)")
    sweep.add_argument("--allocators", default=None, help="comma-separated allocator names")
    sweep.add_argument("--registers", default=None, help="comma-separated register counts")
    sweep.add_argument("--seed", type=int, default=2013)
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes for cache misses")
    sweep.add_argument("--max-instances", type=int, default=None)
    sweep.add_argument("--skip-trivial", action="store_true")
    sweep.add_argument("--no-verify", action="store_true", help="skip allocation verification")
    sweep.add_argument(
        "--no-resume", action="store_true", help="recompute every cell (results still persisted)"
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the sweep (*.json Chrome trace, otherwise JSONL)",
    )
    sweep.add_argument(
        "--backend",
        choices=("local", "service"),
        default="local",
        help="where missing cells execute: in process, or batched over running services",
    )
    sweep.add_argument(
        "--endpoints",
        default=None,
        help="comma-separated service base URLs (required with --backend service)",
    )
    sweep.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="cells per service batch submission (service backend, default 32)",
    )
    sweep.add_argument(
        "--client",
        default="sweep",
        help="client name for the service queue's per-client fairness (default 'sweep')",
    )
    sweep.add_argument(
        "--corpus",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream N generated functions through the sweep at constant memory "
            "instead of materializing a figure corpus (suite defaults to eembc)"
        ),
    )
    sweep.add_argument(
        "--window",
        type=int,
        default=256,
        help="instances keyed/executed per streaming window (--corpus only, default 256)",
    )

    merge_batches_cmd = subparsers.add_parser(
        "merge-batches",
        help="fuse independently produced store shards into one store (conflict-checked)",
    )
    merge_batches_cmd.add_argument(
        "--into", required=True, help="destination store path (created if missing)"
    )
    merge_batches_cmd.add_argument(
        "sources", nargs="+", help="shard store paths (*.sqlite or *.jsonl, mixed freely)"
    )

    reproduce = subparsers.add_parser(
        "reproduce",
        help="sweep one figure's corpus through a store and print the figure "
        "(local pool or service fleet; identical output either way)",
    )
    reproduce.add_argument(
        "--figure", required=True, choices=sorted(FIGURE_SPECS), help="figure identifier"
    )
    reproduce.add_argument("--store", required=True, help="experiment store path")
    reproduce.add_argument(
        "--backend",
        choices=("local", "service"),
        default="local",
        help="execution backend for missing cells (default local)",
    )
    reproduce.add_argument(
        "--endpoints",
        default=None,
        help="comma-separated service base URLs (required with --backend service)",
    )
    reproduce.add_argument(
        "--batch-size", type=int, default=32, help="cells per service batch submission"
    )
    reproduce.add_argument(
        "--client", default="reproduce", help="client name for the service queue fairness"
    )
    reproduce.add_argument("--seed", type=int, default=2013)
    reproduce.add_argument("--scale", type=float, default=1.0, help="corpus scale factor")
    reproduce.add_argument("--max-instances", type=int, default=None)
    reproduce.add_argument(
        "--jobs", type=int, default=1, help="worker processes (local backend only)"
    )

    aggregate = subparsers.add_parser(
        "aggregate", help="summarize a store's records (no allocator runs)"
    )
    aggregate.add_argument("--store", required=True)
    aggregate.add_argument(
        "--figure",
        choices=sorted(FIGURE_SPECS),
        default=None,
        help="restrict the aggregation to one figure's cells",
    )

    report = subparsers.add_parser(
        "report", help="render a figure from a store (no allocator runs)"
    )
    report.add_argument("name", choices=sorted(FIGURE_SPECS), help="figure identifier")
    report.add_argument("--store", required=True)
    report.add_argument("--format", choices=("ascii", "markdown", "html"), default="markdown")
    report.add_argument("--output", default=None, help="write to this file instead of stdout")

    corpus = subparsers.add_parser("corpus", help="generate and summarize a synthetic corpus")
    corpus.add_argument("--suite", default="eembc", choices=sorted(SUITES))
    corpus.add_argument("--seed", type=int, default=2013)
    corpus.add_argument("--scale", type=float, default=1.0)

    oracle = subparsers.add_parser(
        "oracle",
        help="differential correctness fuzzing: execute programs before/after the spill pipeline",
    )
    oracle.add_argument("--seed", type=int, default=0, help="campaign seed (programs derive from it)")
    oracle.add_argument("--count", type=int, default=100, help="number of generated programs")
    oracle.add_argument(
        "--size",
        default="small",
        help="program size profile (tiny/small/medium/large)",
    )
    oracle.add_argument(
        "--allocators",
        default=None,
        help="comma-separated allocator names (default: every registered allocator, deduplicated)",
    )
    oracle.add_argument(
        "--targets",
        default=None,
        help=f"comma-separated targets (default: all of {sorted(ALL_TARGETS)})",
    )
    oracle.add_argument(
        "--registers",
        default=None,
        help="comma-separated register counts (default: 4, small enough to force spilling)",
    )
    oracle.add_argument(
        "--non-ssa",
        action="store_true",
        help="check the non-SSA lowering path (general graphs) instead of SSA",
    )
    oracle.add_argument(
        "--constrain",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "fuzz with machine-model constraints on this fraction of "
            "variables (restricts the allocator set to the constraint-aware "
            "family)"
        ),
    )
    oracle.add_argument("--jobs", type=int, default=1, help="worker processes for the fuzz batch")
    oracle.add_argument(
        "--store",
        default=None,
        help="experiment store path; the campaign manifest is recorded in it",
    )
    oracle.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without delta-debugging them into reproducers",
    )
    oracle.add_argument(
        "--regressions",
        default="tests/oracle/regressions",
        help="directory for minimized reproducers (and for --replay)",
    )
    oracle.add_argument(
        "--replay",
        action="store_true",
        help="replay the regression corpus instead of fuzzing fresh programs",
    )
    oracle.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the campaign (*.json Chrome trace, otherwise JSONL)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="run the pipeline on an input under a live tracer and export the trace",
    )
    trace.add_argument("input", help="path to a .ir module or a graph .json/.json.gz")
    trace.add_argument("--allocator", default=None, help=f"one of {available_allocators()} (default BFPL)")
    trace.add_argument("--registers", type=int, default=None, help="register count (default 8)")
    trace.add_argument(
        "--target",
        default=None,
        help=f"one of {sorted(ALL_TARGETS)} (default {DEFAULT_TARGET}; ignored for graph JSON inputs)",
    )
    trace.add_argument("--pipeline", default=None, help="pipeline spec (same forms as allocate)")
    trace.add_argument("--no-opt", action="store_true", help="skip the loadstore_opt stage")
    trace.add_argument(
        "--store",
        default=None,
        help="experiment store path; store hit/miss counters appear in the trace",
    )
    trace.add_argument(
        "--jobs", type=int, default=1, help="worker processes (their spans merge into extra lanes)"
    )
    trace.add_argument(
        "--format",
        choices=("text", "jsonl", "chrome"),
        default="text",
        help="text summary, repro-trace JSONL, or a Chrome/Perfetto trace-event JSON",
    )
    trace.add_argument(
        "-o", "--output", default=None, help="write to this file instead of stdout"
    )

    stats = subparsers.add_parser(
        "stats", help="summarize a repro-trace JSONL file (spans, counters, gauges)"
    )
    stats.add_argument("input", help="path to a trace .jsonl written by trace/--trace")
    stats.add_argument(
        "--top", type=int, default=30, help="show at most this many span aggregates"
    )

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json files (latest entries) and flag regressions",
    )
    bench_diff.add_argument("old", help="baseline bench file (history or flat payload)")
    bench_diff.add_argument("new", help="candidate bench file (history or flat payload)")
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change in the bad direction that counts as a regression (default 0.25)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the allocation service (durable queue + workers + HTTP API)",
    )
    serve.add_argument(
        "--store",
        required=True,
        help="SQLite experiment store the workers read/write (the cache)",
    )
    serve.add_argument(
        "--queue",
        default=None,
        help="job-queue database (default: derived from --store, *.queue.sqlite)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=f"bind port (default {DEFAULT_SERVICE_PORT}; 0 picks a free one)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads draining the queue (0 = accept-only, jobs stay pending)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit an allocation job to a running service"
    )
    submit.add_argument(
        "--url", default=DEFAULT_SERVICE_URL, help=f"server base URL (default {DEFAULT_SERVICE_URL})"
    )
    submit.add_argument(
        "--input", default=None, help="path to a .ir module or a graph .json/.json.gz"
    )
    submit.add_argument(
        "--batch",
        default=None,
        metavar="MANIFEST",
        help=(
            "submit a batch manifest instead of a single input: a JSON object "
            '{"jobs": [...], "name", "client", "priority"} whose entries are '
            'submission bodies (an entry may use "input": PATH to load IR/graph '
            "from a file, relative to the manifest)"
        ),
    )
    submit.add_argument(
        "--client",
        default="",
        help="client name for the queue's per-client fairness (default: untagged)",
    )
    submit.add_argument("--allocator", default="NL", help=f"one of {available_allocators()}")
    submit.add_argument("--registers", type=int, default=None, help="register count")
    submit.add_argument("--target", default=None, help="target machine (IR inputs only)")
    submit.add_argument("--name", default=None, help="job name (defaults to the input stem)")
    submit.add_argument("--non-ssa", action="store_true", help="use the non-SSA lowering")
    submit.add_argument("--no-opt", action="store_true", help="skip the loadstore_opt stage")
    submit.add_argument("--priority", type=int, default=0, help="queue priority (higher first)")
    submit.add_argument(
        "--max-attempts", type=int, default=None, help="retries before dead-lettering"
    )
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes and print its result"
    )
    submit.add_argument(
        "--timeout", type=float, default=120.0, help="--wait timeout in seconds"
    )

    jobs = subparsers.add_parser("jobs", help="inspect a running service's jobs and stats")
    jobs.add_argument("id", nargs="?", default=None, help="show one job in full")
    jobs.add_argument(
        "--url", default=DEFAULT_SERVICE_URL, help=f"server base URL (default {DEFAULT_SERVICE_URL})"
    )
    jobs.add_argument("--state", default=None, help="filter the listing by state")
    jobs.add_argument("--limit", type=int, default=20, help="listing length (default 20)")
    jobs.add_argument(
        "--stats", action="store_true", help="print the /v1/stats payload instead of a listing"
    )

    subparsers.add_parser("list", help="list allocators, suites and targets")
    return parser


def _allocate_spec(args: argparse.Namespace, is_graph: bool) -> PipelineSpec:
    """Merge ``--pipeline`` with the explicit allocate flags into one spec.

    Explicit flags win over the spec form; unset flags fall back to the spec
    form, then to the legacy defaults (BFPL, 8 registers).  ``--target`` is
    documented as ignored for graph JSON inputs, so it is not even validated
    there (the caller warns separately).
    """
    spec = PipelineSpec.parse(
        args.pipeline,
        allocator=args.allocator,
        registers=args.registers,
        target=None if is_graph else args.target,
        opt=False if args.no_opt else None,
        constrain=getattr(args, "constrain", None),
    )
    if spec.registers is None:
        spec = dataclasses.replace(spec, registers=8)
    check = getattr(args, "check", None)  # the trace sub-command has no --check
    if check is not None:
        spec = dataclasses.replace(spec, check=check)
    return spec


def _emit_contexts(contexts, emit: str) -> int:
    """Print a batch of pipeline contexts in the requested form."""
    if emit == "ir":
        texts = [context.rewritten_ir() for context in contexts]
        if any(text is None for text in texts):
            return _error(
                "--emit ir needs the spill_code stage to run on IR input "
                "(graph JSON inputs carry no IR to rewrite)"
            )
        print("\n\n".join(texts))
        return 0
    if emit == "json":
        print(json.dumps([context.summary() for context in contexts], indent=2))
        return 0
    for context in contexts:
        problem, result = context.problem, context.result
        if problem is None:
            # A front-end-only stage chain produced no allocation problem.
            print(f"{context.name}: stages {', '.join(context.stages_run)} completed")
            continue
        print(f"{context.name}: |V|={len(problem.graph)} pressure={problem.max_pressure}")
        if result is None:
            print(f"  no allocation (stages: {', '.join(context.stages_run)})")
            continue
        print(
            f"  allocated={result.num_allocated} spilled={result.num_spilled} "
            f"cost={result.spill_cost:.2f}"
        )
        if result.spilled:
            print(f"  spilled variables: {', '.join(sorted(str(v) for v in result.spilled))}")
    return 0


def _export_trace(snapshot, path: str) -> None:
    """Export a trace snapshot by suffix: ``*.json`` Chrome, otherwise JSONL."""
    if path.endswith(".json"):
        write_chrome(snapshot, path)
    else:
        write_jsonl(snapshot, path)


def _run_input_pipeline(args: argparse.Namespace, tracer: Optional[Tracer] = None):
    """Parse ``args.input`` and run the pipeline over it (shared by
    ``allocate`` and ``trace``).

    Returns ``(contexts, None)`` on success or ``(None, exit_code)`` after
    printing the error.
    """
    input_path = Path(args.input)
    if not input_path.is_file():
        return None, _error(f"input file not found: {args.input}")
    if args.jobs < 1:
        return None, _error(f"--jobs must be >= 1, got {args.jobs}")
    is_graph = _is_graph_json(args.input)
    try:
        spec = _allocate_spec(args, is_graph)
    except PipelineError as error:
        return None, _error(str(error))

    try:
        if is_graph:
            if args.target is not None:
                print(
                    f"repro-alloc: warning: --target {args.target} is ignored for graph JSON inputs",
                    file=sys.stderr,
                )
            graph = load_graph(input_path)
            problems = [
                AllocationProblem(graph=graph, num_registers=spec.registers, name=args.input)
            ]
            functions = None
        else:
            module = parse_module(input_path.read_text(encoding="utf-8"))
            functions = list(module)
            problems = None
    except (ReproError, json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
        return None, _error(f"invalid input file {args.input}: {error}")

    try:
        with Pipeline(spec, store=args.store, tracer=tracer) as pipeline:
            if functions is not None:
                contexts = pipeline.run_many(functions, jobs=args.jobs)
            else:
                contexts = [pipeline.run_problem(problem) for problem in problems]
    except ReproError as error:
        return None, _error(str(error))
    except (OSError, sqlite3.Error) as error:
        return None, _error(f"cannot use store {args.store}: {error}")
    return contexts, None


def _command_allocate(args: argparse.Namespace) -> int:
    """Run the pass pipeline on one input file and print the outcome."""
    tracer = Tracer() if args.trace else None
    contexts, code = _run_input_pipeline(args, tracer)
    if contexts is None:
        return code
    if tracer is not None:
        try:
            _export_trace(tracer.snapshot(), args.trace)
        except OSError as error:
            return _error(f"cannot write trace {args.trace}: {error}")
        print(f"trace: wrote {args.trace}", file=sys.stderr)
    return _emit_contexts(contexts, args.emit)


def _command_trace(args: argparse.Namespace) -> int:
    """Run the pipeline under a live tracer and export/print the trace."""
    tracer = Tracer()
    contexts, code = _run_input_pipeline(args, tracer)
    if contexts is None:
        return code
    snapshot = tracer.snapshot()
    if args.format == "text":
        text = render_text_summary(snapshot)
    elif args.format == "jsonl":
        text = "\n".join(snapshot_to_jsonl_lines(snapshot))
    else:
        text = json.dumps(snapshot_to_chrome(snapshot), indent=2, sort_keys=True)
    if args.output:
        output = Path(args.output)
        try:
            if output.parent != Path("."):
                output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(text + "\n", encoding="utf-8")
        except OSError as error:
            return _error(f"cannot write trace {args.output}: {error}")
        print(f"wrote {args.output} ({len(snapshot.events)} span(s))")
    else:
        print(text)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    """Summarize a previously-exported repro-trace JSONL file."""
    try:
        snapshot = read_jsonl(args.input)
    except (ReproError, OSError) as error:
        return _error(str(error))
    print(render_text_summary(snapshot, top=args.top))
    return 0


def _command_bench_diff(args: argparse.Namespace) -> int:
    """Compare the latest entries of two bench files; exit 1 on regressions."""
    from repro.telemetry.bench import diff_entries, latest_entry, render_bench_diff

    try:
        old_entry = latest_entry(args.old)
        new_entry = latest_entry(args.new)
    except (ReproError, OSError, json.JSONDecodeError) as error:
        return _error(str(error))
    diff = diff_entries(old_entry, new_entry, threshold=args.threshold)
    print(render_bench_diff(diff, old_label="old", new_label="new"))
    return 0 if diff.ok else 1


def _emit_diagnostics(diagnostics, fmt: str) -> int:
    """Print diagnostics in the requested form; exit 1 on any error finding."""
    from repro.check import diagnostics_to_json, errors_of, render_diagnostics

    if fmt == "json":
        print(json.dumps(diagnostics_to_json(diagnostics), indent=2))
    else:
        if diagnostics:
            print(render_diagnostics(diagnostics))
        errors = len(errors_of(diagnostics))
        print(
            f"{len(diagnostics)} diagnostic(s), {errors} error(s)"
            if diagnostics
            else "no diagnostics"
        )
    return 1 if errors_of(diagnostics) else 0


def _command_check(args: argparse.Namespace) -> int:
    """Statically verify an IR module and report typed diagnostics."""
    from repro.check import Diagnostic, Location, check_ir_function, filter_diagnostics
    from repro.errors import ParseError

    input_path = Path(args.input)
    if not input_path.is_file():
        return _error(f"input file not found: {args.input}")
    select = _csv_names(args.select) if args.select else None
    ignore = _csv_names(args.ignore) if args.ignore else None
    try:
        text = input_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return _error(f"cannot read {args.input}: {error}")
    try:
        module = parse_module(text, name=input_path.stem)
    except ParseError as error:
        # Surface the syntax failure through the same diagnostic pipeline as
        # the semantic checks, so --format json consumers see one shape.
        message = error.raw_message
        if error.line is not None:
            message = f"{message} (line {error.line})"
        diagnostic = Diagnostic(
            code="PARSE001",
            message=message,
            location=Location(function=error.function, block=error.block),
            checker="parse",
        )
        return _emit_diagnostics(
            filter_diagnostics([diagnostic], select=select, ignore=ignore), args.format
        )

    functions = list(module)
    if args.function is not None:
        functions = [f for f in functions if f.name == args.function]
        if not functions:
            available = sorted(f.name for f in module)
            return _error(f"no function {args.function!r} in {args.input}; found {available}")
    diagnostics = []
    for function in functions:
        diagnostics.extend(check_ir_function(function, ssa=args.ssa))
    return _emit_diagnostics(
        filter_diagnostics(diagnostics, select=select, ignore=ignore), args.format
    )


def _command_figure(args: argparse.Namespace) -> int:
    """Regenerate a figure and print its rendered table."""
    function = ALL_FIGURES[args.name]
    kwargs = {"seed": args.seed, "scale": args.scale}
    if args.max_instances is not None:
        kwargs["max_instances"] = args.max_instances
    if args.store is not None:
        spec = FIGURE_SPECS.get(args.name)
        if spec is None:
            print(
                f"repro-alloc: warning: --store is ignored for {args.name} "
                "(it drives the allocators directly)",
                file=sys.stderr,
            )
        else:
            corpus = build_corpus(spec.suite, target=spec.target, seed=args.seed, scale=args.scale)
            config = ExperimentConfig(
                allocators=list(spec.allocators),
                register_counts=list(spec.register_counts),
            )
            with open_store(args.store) as store:
                kwargs["records"] = run_experiment(
                    corpus, config, max_instances=args.max_instances, store=store
                )
    result = function(**kwargs)
    print(result.rendered)
    return 0


# ---------------------------------------------------------------------- #
# sweep -> aggregate -> report pipeline
# ---------------------------------------------------------------------- #
def _resolve_sweep_spec(args: argparse.Namespace) -> Optional[FigureSpec]:
    """Merge ``--figure`` presets with explicit overrides into one spec."""
    preset = FIGURE_SPECS.get(args.figure) if args.figure else None
    suite = args.suite or (preset.suite if preset else None)
    target = args.target or (preset.target if preset else None)
    allocators = _csv_names(args.allocators) if args.allocators else (
        list(preset.allocators) if preset else None
    )
    registers = _csv_ints(args.registers) if args.registers else (
        list(preset.register_counts) if preset else None
    )
    if suite is None or not allocators or not registers:
        return None
    return FigureSpec(suite, target, tuple(allocators), tuple(registers))


def _resolve_execution_backend(args: argparse.Namespace):
    """Build the sweep/reproduce execution backend from the shared flags.

    Raises :class:`ReproError` on a misconfiguration (missing endpoints,
    bad batch size) so callers render it as a clean exit-1 message.
    """
    from repro.experiments.backends import LocalPoolBackend, ServiceBackend

    if args.backend != "service":
        return LocalPoolBackend()
    if not args.endpoints or not _csv_names(args.endpoints):
        raise ReproError("--backend service needs --endpoints URL[,URL...]")
    return ServiceBackend(
        _csv_names(args.endpoints),
        batch_size=args.batch_size,
        client=args.client,
    )


def _command_sweep(args: argparse.Namespace) -> int:
    """Run a (resumable) sweep into the experiment store and print its manifest."""
    try:
        spec = _resolve_sweep_spec(args)
    except ValueError as error:
        return _error(f"invalid --registers value: {error}")
    streamed = args.corpus is not None
    if spec is None and not streamed:
        return _error("sweep needs --figure or all of --suite/--allocators/--registers")
    if spec is None:
        try:
            allocators = _csv_names(args.allocators) if args.allocators else None
            registers = _csv_ints(args.registers) if args.registers else None
        except ValueError as error:
            return _error(f"invalid --registers value: {error}")
        if not allocators or not registers:
            return _error(
                "--corpus sweeps need --allocators and --registers (or a --figure preset)"
            )
        spec = FigureSpec(args.suite or "eembc", args.target, tuple(allocators), tuple(registers))
    config = ExperimentConfig(
        allocators=list(spec.allocators),
        register_counts=list(spec.register_counts),
        verify=not args.no_verify,
        skip_trivial=args.skip_trivial,
        jobs=args.jobs,
    )
    try:
        config.validate()
    except ValueError as error:
        return _error(str(error))
    try:
        execution = _resolve_execution_backend(args)
    except ReproError as error:
        return _error(str(error))
    tracer = Tracer() if args.trace else None
    with open_store(args.store) as store:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            try:
                if streamed:
                    stream = CorpusStream(
                        args.corpus,
                        suite=args.suite or spec.suite or "eembc",
                        target=spec.target,
                        seed=args.seed,
                    )
                    run_streamed_experiment(
                        stream,
                        config,
                        store,
                        backend=execution,
                        window=args.window,
                        resume=not args.no_resume,
                        max_instances=args.max_instances,
                        suite="corpus",
                        target=stream.target.name,
                        seed=args.seed,
                    )
                else:
                    corpus = build_corpus(
                        spec.suite, target=spec.target, seed=args.seed, scale=args.scale
                    )
                    run_experiment(
                        corpus,
                        config,
                        max_instances=args.max_instances,
                        store=store,
                        resume=not args.no_resume,
                        backend=execution,
                    )
            except ReproError as error:
                return _error(str(error))
            except ValueError as error:
                return _error(str(error))
        manifest = store.manifests()[-1]
        store_cells = len(store)
        backend = store.backend
    if tracer is not None:
        try:
            _export_trace(tracer.snapshot(), args.trace)
        except OSError as error:
            return _error(f"cannot write trace {args.trace}: {error}")
        print(f"trace: wrote {args.trace}", file=sys.stderr)
    print(f"sweep complete: store={args.store} backend={backend} store_cells={store_cells}")
    print(
        f"suite={manifest.suite} target={manifest.target} seed={manifest.seed} "
        f"scale={manifest.scale} git_rev={manifest.git_rev} run_id={manifest.run_id}"
    )
    print(
        f"instances={manifest.instances} cells={manifest.cells_total} "
        f"computed={manifest.cells_computed} cached={manifest.cells_cached} "
        f"hit_rate={manifest.hit_rate:.3f} wall={manifest.wall_time_seconds:.2f}s"
    )
    print(render_cache_split(manifest))
    return 0


def _command_merge_batches(args: argparse.Namespace) -> int:
    """Fuse shard stores into one destination store (conflict-checked)."""
    from repro.errors import MergeConflictError
    from repro.store.merge import merge_batches

    missing = [source for source in args.sources if not Path(source).is_file()]
    if missing:
        return _error(f"shard store(s) not found: {', '.join(missing)}")
    try:
        report = merge_batches(args.into, args.sources)
    except MergeConflictError as error:
        return _error(str(error))
    except (ReproError, OSError, sqlite3.Error) as error:
        return _error(str(error))
    print(
        f"merged {report.sources} shard(s) into {args.into}: "
        f"added={report.added} deduped={report.deduped} "
        f"manifests={report.manifests_added}"
    )
    return EXIT_OK


def _command_reproduce(args: argparse.Namespace) -> int:
    """Sweep one figure's corpus through a store and print the figure.

    The figure text goes to **stdout** and everything else to stderr, so
    ``reproduce --backend local`` and ``reproduce --backend service`` can be
    byte-compared directly (the e2e test and the CI distributed-sweep job
    do exactly that).  A warm store completes with zero allocator calls.
    """
    spec = FIGURE_SPECS[args.figure]
    config = ExperimentConfig(
        allocators=list(spec.allocators),
        register_counts=list(spec.register_counts),
        jobs=args.jobs,
    )
    try:
        config.validate()
        execution = _resolve_execution_backend(args)
    except (ReproError, ValueError) as error:
        return _error(str(error))
    corpus = build_corpus(spec.suite, target=spec.target, seed=args.seed, scale=args.scale)
    try:
        with open_store(args.store) as store:
            records = run_experiment(
                corpus,
                config,
                max_instances=args.max_instances,
                store=store,
                backend=execution,
            )
            manifest = store.manifests()[-1]
    except ReproError as error:
        return _error(str(error))
    except (OSError, sqlite3.Error) as error:
        return _error(f"cannot use store {args.store}: {error}")
    print(
        f"reproduce {args.figure}: backend={execution.name} store={args.store} "
        f"cells={manifest.cells_total} computed={manifest.cells_computed} "
        f"cached={manifest.cells_cached}",
        file=sys.stderr,
    )
    result = ALL_FIGURES[args.figure](records=records)
    print(result.rendered)
    return EXIT_OK


def _mixed_corpus_error(manifests, suites: Optional[set] = None) -> Optional[str]:
    """Detect sweeps of one suite over *different* corpora in the same store.

    Instance names are seed/scale-independent, so normalizing records of two
    corpus builds of the same suite against each other would silently divide
    by the wrong optimum.  The run manifests carry the provenance to catch
    this before it corrupts a figure.
    """
    combos: dict = {}
    for manifest in manifests:
        if manifest.suite is None:
            continue
        if suites is not None and manifest.suite not in suites:
            continue
        combos.setdefault(manifest.suite, set()).add((manifest.seed, manifest.scale))
    mixed = {suite: sorted(c) for suite, c in combos.items() if len(c) > 1}
    if not mixed:
        return None
    detail = "; ".join(
        f"{suite} swept with " + ", ".join(f"(seed={seed}, scale={scale})" for seed, scale in combos)
        for suite, combos in sorted(mixed.items())
    )
    return (
        f"store mixes different corpus builds of the same suite ({detail}); "
        "records would normalize against the wrong optimum — keep one store "
        "per corpus configuration"
    )


def _filter_records(records: Sequence[InstanceRecord], spec: FigureSpec) -> List[InstanceRecord]:
    """Restrict store records to one figure's suite, allocators and registers."""
    allocators = set(spec.allocators)
    registers = set(spec.register_counts)
    prefix = f"{spec.suite}/"
    return [
        record
        for record in records
        if record.instance.startswith(prefix)
        and record.allocator in allocators
        and record.num_registers in registers
    ]


def _command_aggregate(args: argparse.Namespace) -> int:
    """Summarize the store's records through the standard statistics."""
    with open_store(args.store) as store:
        records = store.records()
        manifests = store.manifests()
    suites = {FIGURE_SPECS[args.figure].suite} if args.figure else None
    mixed = _mixed_corpus_error(manifests, suites)
    if mixed:
        return _error(mixed)
    if args.figure:
        records = _filter_records(records, FIGURE_SPECS[args.figure])
    if not records:
        return _error(f"no matching records in store {args.store}; run `repro-alloc sweep` first")
    allocators = sorted({record.allocator for record in records})
    register_counts = sorted({record.num_registers for record in records})
    normalized, unbounded = normalize_records(records)
    if not normalized:
        return _error(
            "no records could be normalized: the store has no 'Optimal' baseline "
            "cells for these instances — include Optimal in the sweep's --allocators"
        )
    series = mean_ratio_by(normalized, allocators, register_counts)
    table = render_table(series, register_counts, row_header="allocator", column_format=lambda c: f"R={c}")
    print(render_figure("Aggregate - mean normalized allocation cost", table))
    instances = len({record.instance for record in records})
    print(
        f"records={len(records)} instances={instances} allocators={len(allocators)} "
        f"register_counts={len(register_counts)} unbounded={unbounded}"
    )
    return 0


def _command_report(args: argparse.Namespace) -> int:
    """Render one figure from store records, without running any allocator."""
    spec = FIGURE_SPECS[args.name]
    with open_store(args.store) as store:
        records = _filter_records(store.records(), spec)
        manifests = store.manifests()
    mixed = _mixed_corpus_error(manifests, {spec.suite})
    if mixed:
        return _error(mixed)
    if not records:
        return _error(
            f"no records for {args.name} in store {args.store}; "
            f"run `repro-alloc sweep --figure {args.name}` first"
        )
    if not any(record.allocator.lower() == "optimal" for record in records):
        return _error(
            f"store has no 'Optimal' baseline cells for {args.name}; the figure "
            "normalizes against Optimal — include it in the sweep"
        )
    result = ALL_FIGURES[args.name](records=records)
    if args.format == "ascii":
        text = result.rendered
    elif args.format == "markdown":
        text = render_markdown_report(result)
    else:
        text = render_html_report(result)
    if args.output:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _command_corpus(args: argparse.Namespace) -> int:
    """Build a corpus and print a summary line per instance."""
    corpus = build_corpus(args.suite, seed=args.seed, scale=args.scale)
    print(f"suite={corpus.suite} target={corpus.target} seed={corpus.seed} instances={len(corpus)}")
    for key, value in corpus.summary().items():
        print(f"  {key}: {value}")
    for problem in corpus:
        chordality = "chordal" if problem.is_chordal else "general"
        print(
            f"  {problem.name}: |V|={len(problem.graph)} |E|={problem.graph.num_edges()} "
            f"pressure={problem.max_pressure} ({chordality})"
        )
    return 0


def _command_oracle(args: argparse.Namespace) -> int:
    """Run a differential fuzz campaign (or replay the regression corpus)."""
    from repro.oracle import (
        CampaignConfig,
        check_function,
        load_regressions,
        run_campaign,
    )

    regressions = Path(args.regressions)
    if args.replay:
        cases = load_regressions(regressions)
        if not cases:
            print(f"no regression cases under {regressions}")
            return 0
        failed = 0
        for case in cases:
            check = check_function(
                case.function,
                case.allocator or "NL",
                case.target or DEFAULT_TARGET,
                case.registers or 4,
                ssa=case.ssa,
                constrain=case.constrain,
            )
            print(f"{case.path.name}: {check.status}")
            if check.failed:
                failed += 1
                print(f"  {check.detail}")
        print(f"replayed {len(cases)} regression case(s), {failed} failing")
        return 1 if failed else 0

    try:
        config = CampaignConfig(
            seed=args.seed,
            count=args.count,
            size=args.size,
            allocators=tuple(_csv_names(args.allocators)) if args.allocators else (),
            targets=tuple(_csv_names(args.targets)) if args.targets else (),
            register_counts=(
                tuple(_csv_ints(args.registers)) if args.registers else (4,)
            ),
            ssa=not args.non_ssa,
            jobs=args.jobs,
            minimize_failures=not args.no_minimize,
            constrain=args.constrain,
        ).validate()
    except ValueError as error:
        return _error(str(error))

    tracer = Tracer() if args.trace else None
    try:
        if args.store is not None:
            with open_store(args.store) as store:
                result = run_campaign(
                    config, store=store, regressions_dir=regressions, tracer=tracer
                )
        else:
            result = run_campaign(config, regressions_dir=regressions, tracer=tracer)
    except ReproError as error:
        return _error(str(error))
    except sqlite3.Error as error:
        return _error(f"cannot use store {args.store}: {error}")
    except OSError as error:
        # Either the store file or the regressions directory is unusable.
        return _error(
            f"campaign I/O failed (store={args.store}, regressions={regressions}): {error}"
        )
    if tracer is not None:
        try:
            _export_trace(tracer.snapshot(), args.trace)
        except OSError as error:
            return _error(f"cannot write trace {args.trace}: {error}")
        print(f"trace: wrote {args.trace}", file=sys.stderr)
    print("\n".join(result.summary_lines()))
    return 0 if result.passed else 1


def _command_serve(args: argparse.Namespace) -> int:
    """Run the allocation service until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.service.server import AllocationService

    try:
        service = AllocationService(
            args.store,
            args.queue,
            workers=args.workers,
            host=args.host,
            port=args.port,
        ).start()
    except ReproError as error:
        return _error(str(error))
    except OSError as error:
        return _error(f"cannot bind {args.host}:{args.port}: {error}")
    print(
        f"serving on {service.url} "
        f"(store {service.store_path}, queue {service.queue_path}, "
        f"{args.workers} worker(s))",
        file=sys.stderr,
    )
    if service.recovered:
        print(
            f"recovered {len(service.recovered)} interrupted job(s) from the queue",
            file=sys.stderr,
        )
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        stop.wait()
    finally:
        # Graceful: running jobs finish, pending jobs stay pending in the
        # durable queue for the next `serve` to re-claim.
        service.shutdown(drain=True)
    print("shutdown: workers drained, queue closed", file=sys.stderr)
    return EXIT_OK


def _submission_body(args: argparse.Namespace) -> dict:
    """Build a POST /v1/jobs body from the submit flags + input file."""
    path = Path(args.input)
    if not path.exists():
        raise ReproError(f"input file not found: {args.input}")
    name = args.name or path.stem
    body: dict = {
        "allocator": args.allocator,
        "name": name,
        "ssa": not args.non_ssa,
        "opt": not args.no_opt,
        "priority": args.priority,
    }
    if args.registers is not None:
        body["registers"] = args.registers
    if args.max_attempts is not None:
        body["max_attempts"] = args.max_attempts
    if args.client:
        body["client"] = args.client
    if path.name.endswith((".json", ".json.gz")):
        from repro.graphs.io import graph_to_dict

        body["graph"] = graph_to_dict(load_graph(path), name=name)
    else:
        body["ir"] = path.read_text()
        if args.target is not None:
            body["target"] = args.target
    return body


def _batch_body(args: argparse.Namespace) -> dict:
    """Load a ``--batch`` manifest into a POST /v1/batches body.

    The manifest is ``{"jobs": [...]}`` plus optional batch-level ``name``,
    ``client``, ``priority`` and ``max_attempts``.  Each entry is a
    submission body; ``"input": PATH`` (relative to the manifest file)
    loads a ``.ir`` module or graph JSON into the entry in place.
    """
    manifest_path = Path(args.batch)
    if not manifest_path.is_file():
        raise ReproError(f"batch manifest not found: {args.batch}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ReproError(f"invalid batch manifest {args.batch}: {error}") from None
    if not isinstance(manifest, dict) or not isinstance(manifest.get("jobs"), list):
        raise ReproError(
            f'batch manifest {args.batch} must be a JSON object with a "jobs" list'
        )
    jobs = []
    for position, entry in enumerate(manifest["jobs"]):
        if not isinstance(entry, dict):
            raise ReproError(f"batch manifest entry {position} must be a JSON object")
        entry = dict(entry)
        input_path = entry.pop("input", None)
        if input_path is not None:
            resolved = Path(input_path)
            if not resolved.is_absolute():
                resolved = manifest_path.parent / resolved
            if not resolved.is_file():
                raise ReproError(
                    f"batch entry {position}: input file not found: {input_path}"
                )
            name = entry.get("name") or resolved.stem
            if resolved.name.endswith((".json", ".json.gz")):
                from repro.graphs.io import graph_to_dict

                entry["graph"] = graph_to_dict(load_graph(resolved), name=name)
            else:
                entry["ir"] = resolved.read_text(encoding="utf-8")
            entry.setdefault("name", name)
        jobs.append(entry)
    body: dict = {"jobs": jobs}
    for field in ("name", "client", "priority", "max_attempts"):
        if field in manifest:
            body[field] = manifest[field]
    if args.client and "client" not in body:
        body["client"] = args.client
    return body


def _command_submit(args: argparse.Namespace) -> int:
    """Submit one job (or a --batch manifest); with --wait, follow it."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.batch is not None:
            response = client.submit_batch(_batch_body(args))
        else:
            response = client.submit(_submission_body(args))
        job = response["job"]
        status = "deduplicated" if response["deduped"] else "submitted"
        print(f"{status}: job {job['id']} ({job['state']})", file=sys.stderr)
        if not args.wait:
            print(job["id"])
            return EXIT_OK
        job = client.wait(job["id"], timeout=args.timeout)
    except ReproError as error:
        return _error(str(error))
    print(json.dumps(job, indent=2, sort_keys=True))
    if job["state"] != "done":
        return _error(f"job {job['id']} ended {job['state']}: {job.get('error')}")
    return EXIT_OK


def _command_jobs(args: argparse.Namespace) -> int:
    """Inspect a running service: one job, a listing, or /v1/stats."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return EXIT_OK
        if args.id is not None:
            print(json.dumps(client.job(args.id), indent=2, sort_keys=True))
            return EXIT_OK
        listing = client.jobs(state=args.state, limit=args.limit)
    except ReproError as error:
        return _error(str(error))
    for job in listing:
        print(
            f"{job['id']}  {job['state']:8}  prio={job['priority']:<3} "
            f"attempts={job['attempts']}/{job['max_attempts']}  "
            f"{job['allocator'] or '-'} R={job['registers'] if job['registers'] is not None else '-'}  "
            f"{job['name'] or ''}"
        )
    if not listing:
        print("no jobs", file=sys.stderr)
    return EXIT_OK


def _command_list() -> int:
    """List the registered allocators, suites and targets."""
    print("allocators:", ", ".join(available_allocators()))
    print("suites:    ", ", ".join(sorted(SUITES)))
    print("targets:   ", ", ".join(sorted(ALL_TARGETS)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "submit" and (args.input is None) == (args.batch is None):
        parser.error("submit needs exactly one of --input or --batch")
    if args.command == "allocate":
        return _command_allocate(args)
    if args.command == "check":
        return _command_check(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "merge-batches":
        return _command_merge_batches(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    if args.command == "aggregate":
        return _command_aggregate(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "corpus":
        return _command_corpus(args)
    if args.command == "oracle":
        return _command_oracle(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "stats":
        return _command_stats(args)
    if args.command == "bench-diff":
        return _command_bench_diff(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "jobs":
        return _command_jobs(args)
    if args.command == "list":
        return _command_list()
    parser.error(f"unknown command {args.command!r}")
    return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
