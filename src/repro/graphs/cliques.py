"""Maximal clique enumeration.

On chordal interference graphs there is a perfect correspondence between
maximal cliques and sets of variables simultaneously live at some program
point (Hack 2006), and a chordal graph on ``n`` vertices has at most ``n``
maximal cliques, enumerable from any perfect elimination order.  The
fixed-point layered allocator (Algorithm 3/4 in the paper) tracks, for every
maximal clique, how many of its members have already been allocated.

For general (non-chordal) graphs used in the SPEC JVM98-style evaluation we
fall back to Bron–Kerbosch with pivoting.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from repro.graphs.chordal import is_perfect_elimination_order, maximum_cardinality_search
from repro.graphs.graph import Graph, Vertex

Clique = FrozenSet[Vertex]


def maximal_cliques_chordal(graph: Graph, peo: Sequence[Vertex] | None = None) -> List[Clique]:
    """Enumerate the maximal cliques of a chordal graph.

    For each vertex ``v`` in a PEO, ``{v} ∪ later-neighbours(v)`` is a clique;
    the maximal cliques are exactly the candidates not strictly contained in
    another candidate.  The containment filter below is quadratic in the
    number of candidates but linear in practice because each vertex belongs to
    few candidates.
    """
    if len(graph) == 0:
        return []
    if peo is None:
        peo = list(reversed(maximum_cardinality_search(graph)))
    from repro.graphs.dense import bit_indices, dense_chordal_clique_masks, dense_rows_of

    if dense_rows_of(graph) is not None:
        # Candidate generation on bitmask rows; the containment filter below
        # is shared (the masks convert to the same vertex sets the set-based
        # path builds, so the filtered list is identical).
        order = graph.vertex_order()
        candidates = [
            {order[i] for i in bit_indices(mask)}
            for mask in dense_chordal_clique_masks(graph, peo)
        ]
    else:
        position = {v: i for i, v in enumerate(peo)}
        candidates = []
        for v in peo:
            later = {u for u in graph.neighbors(v) if position[u] > position[v]}
            candidates.append({v} | later)
    # Keep only candidates not strictly contained in another candidate.
    candidates.sort(key=len, reverse=True)
    maximal: List[Clique] = []
    for cand in candidates:
        if any(cand < other for other in maximal):
            continue
        frozen = frozenset(cand)
        if frozen not in maximal:
            maximal.append(frozen)
    # A candidate equal to another should appear once; filter duplicates while
    # preserving order.
    seen: Set[Clique] = set()
    unique: List[Clique] = []
    for c in maximal:
        if c not in seen:
            seen.add(c)
            unique.append(c)
    return unique


def maximal_cliques_general(graph: Graph) -> List[Clique]:
    """Enumerate maximal cliques with Bron–Kerbosch (pivoting variant).

    Worst case exponential, but interference graphs are sparse and the
    layered-heuristic evaluation only needs this on moderate graphs.
    """
    if len(graph) == 0:
        return []
    cliques: List[Clique] = []

    def expand(r: Set[Vertex], p: Set[Vertex], x: Set[Vertex]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Choose the pivot with the most neighbours in p to minimise branching.
        pivot = max(p | x, key=lambda u: len(graph.neighbors(u) & p))
        for v in list(p - graph.neighbors(pivot)):
            nbrs = graph.neighbors(v)
            expand(r | {v}, p & nbrs, x & nbrs)
            p.remove(v)
            x.add(v)

    expand(set(), set(graph.vertices()), set())
    return cliques


def maximal_cliques(graph: Graph) -> List[Clique]:
    """Enumerate maximal cliques, dispatching on chordality.

    Chordal graphs use the linear PEO-based enumeration; others fall back to
    Bron–Kerbosch.
    """
    order = list(reversed(maximum_cardinality_search(graph)))
    if is_perfect_elimination_order(graph, order):
        return maximal_cliques_chordal(graph, order)
    return maximal_cliques_general(graph)


def maximum_clique_size(graph: Graph) -> int:
    """Return the size of a maximum clique (the clique number ω)."""
    cliques = maximal_cliques(graph)
    return max((len(c) for c in cliques), default=0)


def cliques_containing(cliques: Sequence[Clique], vertex: Vertex) -> List[Clique]:
    """Return the cliques from ``cliques`` that contain ``vertex``."""
    return [c for c in cliques if vertex in c]
