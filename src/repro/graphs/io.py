"""Serialization and content-addressing of weighted interference graphs.

The paper's prototype operated on interference graphs *extracted* from Open64
and JikesRVM and stored on disk.  This module defines the equivalent exchange
format for this reproduction: a small JSON document with vertices, weights and
edges, so corpora of extracted graphs can be cached and shared between the
experiment harness and the benchmarks.  Files ending in ``.gz`` are
transparently gzip-compressed so cached corpora stay small.

It also defines the *canonical digest* of a graph: a SHA-256 over the
sorted-adjacency representation, independent of vertex/edge insertion order.
The experiment store (:mod:`repro.store`) uses this digest to content-address
cached allocation results.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, IO, Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph, name: str | None = None) -> Dict[str, Any]:
    """Convert ``graph`` to a JSON-serializable dictionary."""
    return {
        "format": "repro-interference-graph",
        "version": FORMAT_VERSION,
        "name": name,
        "vertices": [{"id": str(v), "weight": graph.weight(v)} for v in graph.vertices()],
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`graph_to_dict` output."""
    if data.get("format") != "repro-interference-graph":
        raise GraphError("not a repro interference graph document")
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported format version {data.get('version')!r}")
    graph = Graph()
    for entry in data.get("vertices", []):
        graph.add_vertex(entry["id"], float(entry.get("weight", 1.0)))
    for u, v in data.get("edges", []):
        if u not in graph or v not in graph:
            raise GraphError(f"edge ({u!r}, {v!r}) references unknown vertex")
        graph.add_edge(u, v)
    return graph


# ---------------------------------------------------------------------- #
# content addressing
# ---------------------------------------------------------------------- #
def canonical_graph_payload(graph: Graph) -> Dict[str, Any]:
    """The insertion-order-independent representation hashed by the digest.

    Vertices are sorted by their string form, edges by their sorted endpoint
    pair, so two graphs built in different orders canonicalize identically.
    """
    vertices = sorted((str(v), float(graph.weight(v))) for v in graph.vertices())
    edges = sorted(
        (str(u), str(v)) if str(u) <= str(v) else (str(v), str(u))
        for u, v in graph.edges()
    )
    return {"vertices": vertices, "edges": edges}


def graph_digest(graph: Graph) -> str:
    """SHA-256 hex digest of the canonical sorted-adjacency representation."""
    payload = json.dumps(
        canonical_graph_payload(graph), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# file I/O
# ---------------------------------------------------------------------- #
def _open_text(path: Path, mode: str) -> IO[str]:
    """Open ``path`` for text I/O, transparently gzipping ``*.gz`` files."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def dump_graph(graph: Graph, path: Union[str, Path], name: str | None = None) -> None:
    """Write ``graph`` to ``path`` as JSON (gzip-compressed for ``*.json.gz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, "w") as handle:
        json.dump(graph_to_dict(graph, name=name), handle, indent=2, sort_keys=False)


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph previously written with :func:`dump_graph`."""
    with _open_text(Path(path), "r") as handle:
        return graph_from_dict(json.load(handle))
