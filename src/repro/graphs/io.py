"""Serialization of weighted interference graphs.

The paper's prototype operated on interference graphs *extracted* from Open64
and JikesRVM and stored on disk.  This module defines the equivalent exchange
format for this reproduction: a small JSON document with vertices, weights and
edges, so corpora of extracted graphs can be cached and shared between the
experiment harness and the benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph, name: str | None = None) -> Dict[str, Any]:
    """Convert ``graph`` to a JSON-serializable dictionary."""
    return {
        "format": "repro-interference-graph",
        "version": FORMAT_VERSION,
        "name": name,
        "vertices": [{"id": str(v), "weight": graph.weight(v)} for v in graph.vertices()],
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Reconstruct a :class:`Graph` from :func:`graph_to_dict` output."""
    if data.get("format") != "repro-interference-graph":
        raise GraphError("not a repro interference graph document")
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported format version {data.get('version')!r}")
    graph = Graph()
    for entry in data.get("vertices", []):
        graph.add_vertex(entry["id"], float(entry.get("weight", 1.0)))
    for u, v in data.get("edges", []):
        if u not in graph or v not in graph:
            raise GraphError(f"edge ({u!r}, {v!r}) references unknown vertex")
        graph.add_edge(u, v)
    return graph


def dump_graph(graph: Graph, path: Union[str, Path], name: str | None = None) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph, name=name), handle, indent=2, sort_keys=False)


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph previously written with :func:`dump_graph`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))
