"""Weighted undirected graphs and chordal-graph algorithms.

This subpackage is the graph substrate the allocators operate on.  It
provides:

* :class:`~repro.graphs.graph.Graph` — a small, dependency-free weighted
  undirected graph with adjacency sets;
* :class:`~repro.graphs.dense.DenseGraph` — the adjacency-bitmask twin used
  by the dense analysis/allocation kernels; a ``Graph`` subclass whose
  chordality, clique and stable-set queries dispatch to mask arithmetic
  with byte-identical results (:mod:`repro.graphs.dense`);
* chordality machinery — maximum cardinality search, lexicographic BFS,
  perfect elimination orders and a chordality test
  (:mod:`repro.graphs.chordal`);
* maximal clique enumeration for chordal and general graphs
  (:mod:`repro.graphs.cliques`);
* Frank's linear-time maximum weighted stable set algorithm for chordal
  graphs, plus a greedy approximation and a brute-force reference
  (:mod:`repro.graphs.stable_set`);
* greedy colorings (:mod:`repro.graphs.coloring`);
* random graph generators used by the synthetic workloads
  (:mod:`repro.graphs.generators`);
* JSON (de)serialization of weighted graphs (:mod:`repro.graphs.io`).
"""

from repro.graphs.graph import Graph
from repro.graphs.dense import DenseGraph, bit_indices
from repro.graphs.chordal import (
    is_chordal,
    is_perfect_elimination_order,
    maximum_cardinality_search,
    lex_bfs,
    perfect_elimination_order,
)
from repro.graphs.cliques import (
    maximal_cliques,
    maximal_cliques_chordal,
    maximal_cliques_general,
    maximum_clique_size,
)
from repro.graphs.stable_set import (
    maximum_weighted_stable_set,
    greedy_weighted_stable_set,
    brute_force_max_weight_stable_set,
    is_stable_set,
)
from repro.graphs.coloring import (
    greedy_coloring,
    chordal_coloring,
    chromatic_number_chordal,
    is_valid_coloring,
)
from repro.graphs.io import graph_to_dict, graph_from_dict, dump_graph, load_graph

__all__ = [
    "Graph",
    "DenseGraph",
    "bit_indices",
    "is_chordal",
    "is_perfect_elimination_order",
    "maximum_cardinality_search",
    "lex_bfs",
    "perfect_elimination_order",
    "maximal_cliques",
    "maximal_cliques_chordal",
    "maximal_cliques_general",
    "maximum_clique_size",
    "maximum_weighted_stable_set",
    "greedy_weighted_stable_set",
    "brute_force_max_weight_stable_set",
    "is_stable_set",
    "greedy_coloring",
    "chordal_coloring",
    "chromatic_number_chordal",
    "is_valid_coloring",
    "graph_to_dict",
    "graph_from_dict",
    "dump_graph",
    "load_graph",
]
