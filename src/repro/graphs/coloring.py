"""Graph colorings used for register assignment and verification.

In the decoupled approach the *assignment* phase is easy: a chordal graph with
clique number ``ω`` is colorable with exactly ``ω`` colors by a greedy scan of
the reverse perfect elimination order (the "tree-scan" of Colombet et al.).
These routines are used to (a) turn an allocation into an actual register
assignment and (b) verify that the allocated sub-graph is R-colorable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import GraphError
from repro.graphs.chordal import perfect_elimination_order
from repro.graphs.graph import Graph, Vertex

Coloring = Dict[Vertex, int]


def greedy_coloring(graph: Graph, order: Optional[Sequence[Vertex]] = None) -> Coloring:
    """Color ``graph`` greedily in ``order`` with the lowest available color.

    When no order is given the vertices are taken in descending degree, a
    common heuristic for general graphs.  The result is a proper coloring;
    the number of distinct colors depends on the order.
    """
    if order is None:
        order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    elif set(order) != set(graph.vertices()):
        raise GraphError("coloring order must cover exactly the graph's vertices")
    colors: Coloring = {}
    for v in order:
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    return colors


def chordal_coloring(graph: Graph, peo: Optional[Sequence[Vertex]] = None) -> Coloring:
    """Optimally color a chordal graph.

    Greedy coloring along the *reverse* of a perfect elimination order uses
    exactly ``ω(G)`` colors (the clique number), which is optimal.
    """
    if len(graph) == 0:
        return {}
    if peo is None:
        peo = perfect_elimination_order(graph)
    return greedy_coloring(graph, list(reversed(peo)))


def chromatic_number_chordal(graph: Graph, peo: Optional[Sequence[Vertex]] = None) -> int:
    """Return the chromatic number (= clique number) of a chordal graph."""
    coloring = chordal_coloring(graph, peo)
    return (max(coloring.values()) + 1) if coloring else 0


def is_valid_coloring(graph: Graph, coloring: Coloring, num_colors: Optional[int] = None) -> bool:
    """Check a coloring: every vertex colored, adjacent vertices differ.

    When ``num_colors`` is given, also check that every color is in
    ``range(num_colors)`` — i.e. the assignment fits in the register file.
    """
    for v in graph:
        if v not in coloring:
            return False
        if num_colors is not None and not (0 <= coloring[v] < num_colors):
            return False
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            return False
    return True


def color_classes(coloring: Coloring) -> List[List[Vertex]]:
    """Group vertices by color, ordered by color index."""
    if not coloring:
        return []
    classes: List[List[Vertex]] = [[] for _ in range(max(coloring.values()) + 1)]
    for v, c in coloring.items():
        classes[c].append(v)
    return classes
