"""Dense adjacency-bitmask graphs.

A :class:`DenseGraph` stores the adjacency of every vertex as one arbitrary-
width Python integer (bit ``j`` of row ``i`` set iff vertex ``i`` and vertex
``j`` interfere).  Bit indices follow vertex insertion order, so a
``DenseGraph`` is interchangeable with the :class:`~repro.graphs.graph.Graph`
it mirrors: same vertices in the same order, same edges, same weights — and
it *is* a ``Graph`` subclass, so every consumer of the read API keeps
working.  Adjacency *sets* are materialized lazily, in one pass, only when a
consumer actually asks for them (``neighbors``/``subgraph``/``copy``);
mask-level queries (``has_edge``, ``degree``, ``edges``, the dense kernels
below) never build a set.

The payoff is in the kernels: :func:`dense_mcs`,
:func:`dense_is_perfect_elimination_order`,
:func:`dense_chordal_clique_masks` and :func:`dense_frank` are exact
replicas of their set-based counterparts in :mod:`repro.graphs.chordal`,
:mod:`repro.graphs.cliques` and :mod:`repro.graphs.stable_set` — same
results, same orders, same tie-breaking — operating on int masks instead of
hash sets.  The set-based implementations remain in-tree as the reference
oracle; the property suite pins the equivalence.

Mutation contract: structural mutations (``add_edge``, ``remove_vertex``,
...) first materialize the adjacency sets, then *degrade* the instance to
plain set-backed behaviour (``dense_rows()`` returns ``None`` afterwards and
every dense dispatch falls back to the reference path).  Weight updates keep
the dense rows valid — masks do not encode weights.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex

#: Bit-extraction chunk width.  Extraction jumps to the lowest set bit,
#: word-aligns, and peels one ``_CHUNK``-bit window at a time, so sparse
#: high-offset masks (the common shape: SSA live ranges cluster) cost
#: O(set bits) small-int operations plus a few big-int slices.
_CHUNK = 512
_CHUNK_MASK = (1 << _CHUNK) - 1


def bit_indices(mask: int) -> List[int]:
    """Return the indices of the set bits of ``mask``, ascending."""
    out: List[int] = []
    append = out.append
    while mask:
        base = ((mask & -mask).bit_length() - 1) & -_CHUNK
        word = (mask >> base) & _CHUNK_MASK
        mask ^= word << base
        while word:
            lsb = word & -word
            append(base + lsb.bit_length() - 1)
            word ^= lsb
    return out


class DenseGraph(Graph):
    """A :class:`Graph` whose adjacency lives in per-vertex bitmask rows.

    Construct with :meth:`from_graph` (convert an existing graph) or
    :meth:`from_rows` (adopt prebuilt symmetric rows, e.g. from the dense
    interference builder).  Vertex ``i`` is ``vertex_order[i]``; rows must
    be symmetric with zero diagonal.
    """

    __slots__ = ("_order", "_index", "_rows")

    def __init__(self) -> None:
        super().__init__()
        #: vertices in insertion order (bit index -> vertex); None = degraded.
        self._order: Optional[List[Vertex]] = None
        self._index: Optional[Dict[Vertex, int]] = None
        self._rows: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        vertex_order: Sequence[Vertex],
        rows: Sequence[int],
        weights: Sequence[float],
    ) -> "DenseGraph":
        """Adopt prebuilt symmetric adjacency rows (not copied)."""
        if not (len(vertex_order) == len(rows) == len(weights)):
            raise GraphError(
                f"mismatched dense graph inputs: {len(vertex_order)} vertices, "
                f"{len(rows)} rows, {len(weights)} weights"
            )
        g = cls()
        g._order = list(vertex_order)
        g._index = {v: i for i, v in enumerate(g._order)}
        if len(g._index) != len(g._order):
            raise GraphError("duplicate vertices in dense graph order")
        g._rows = list(rows)
        for v, w in zip(g._order, weights):
            if w < 0:
                raise GraphError(f"vertex {v!r} has negative weight {w}")
            g._weights[v] = float(w)
        g._mutations = 1
        return g

    @classmethod
    def from_graph(cls, graph: Graph) -> "DenseGraph":
        """Convert ``graph`` (same vertices, order, edges and weights)."""
        order = graph.vertices()
        index = {v: i for i, v in enumerate(order)}
        rows = [0] * len(order)
        for i, v in enumerate(order):
            m = 0
            for u in graph.neighbors(v):
                m |= 1 << index[u]
            rows[i] = m
        return cls.from_rows(order, rows, [graph.weight(v) for v in order])

    # ------------------------------------------------------------------ #
    # dense surface
    # ------------------------------------------------------------------ #
    def dense_rows(self) -> Optional[List[int]]:
        """The symmetric adjacency rows, or ``None`` once degraded.

        Callers must treat the rows (and the list) as read-only.
        """
        return self._rows

    def vertex_order(self) -> List[Vertex]:
        """Vertices in bit-index order (== insertion order)."""
        if self._order is None:
            return super().vertices()
        return list(self._order)

    def index_of(self, v: Vertex) -> int:
        """Bit index of vertex ``v``."""
        if self._index is None:
            raise GraphError("dense index unavailable: graph was mutated")
        try:
            return self._index[v]
        except KeyError:
            raise GraphError(f"unknown vertex {v!r}") from None

    def mask_of(self, vertices: Iterable[Vertex]) -> int:
        """Membership mask of ``vertices`` (unknown vertices ignored)."""
        if self._index is None:
            raise GraphError("dense index unavailable: graph was mutated")
        index = self._index
        m = 0
        for v in vertices:
            i = index.get(v)
            if i is not None:
                m |= 1 << i
        return m

    def vertices_in(self, mask: int) -> List[Vertex]:
        """Vertices whose bits are set in ``mask``, in bit order."""
        if self._order is None:
            raise GraphError("dense order unavailable: graph was mutated")
        order = self._order
        return [order[i] for i in bit_indices(mask)]

    # ------------------------------------------------------------------ #
    # lazy set materialization / degradation
    # ------------------------------------------------------------------ #
    def _materialize(self) -> None:
        """Fill the inherited adjacency sets from the rows (one pass)."""
        if self._rows is None or self._adj:
            return
        order = self._order
        adj: Dict[Vertex, set] = {v: set() for v in order}
        for i, row in enumerate(self._rows):
            if row:
                adj[order[i]] = {order[j] for j in bit_indices(row)}
        self._adj = adj

    def _degrade(self) -> None:
        """Switch to plain set-backed behaviour before a structural mutation."""
        self._materialize()
        self._order = None
        self._index = None
        self._rows = None

    # ------------------------------------------------------------------ #
    # Graph API overrides: reads answered from the dense side
    # ------------------------------------------------------------------ #
    def __contains__(self, v: Vertex) -> bool:
        if self._index is None:
            return super().__contains__(v)
        return v in self._index

    def __len__(self) -> int:
        if self._order is None:
            return super().__len__()
        return len(self._order)

    def __iter__(self):
        if self._order is None:
            return super().__iter__()
        return iter(self._order)

    def vertices(self) -> List[Vertex]:
        if self._order is None:
            return super().vertices()
        return list(self._order)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if self._index is None or self._rows is None:
            return super().has_edge(u, v)
        i = self._index.get(u)
        j = self._index.get(v)
        if i is None or j is None:
            return False
        return bool(self._rows[i] >> j & 1)

    def degree(self, v: Vertex) -> int:
        if self._rows is None:
            return super().degree(v)
        return self._rows[self.index_of(v)].bit_count()

    def num_edges(self) -> int:
        if self._rows is None:
            return super().num_edges()
        return sum(row.bit_count() for row in self._rows) // 2

    def edges(self) -> List[Tuple[Vertex, Vertex]]:
        if self._rows is None or self._order is None:
            return super().edges()
        order = self._order
        out: List[Tuple[Vertex, Vertex]] = []
        for i, row in enumerate(self._rows):
            high = row >> (i + 1)
            if high:
                u = order[i]
                out.extend((u, order[i + 1 + j]) for j in bit_indices(high))
        return out

    def neighbors(self, v: Vertex):
        if self._rows is not None:
            if self._index is not None and v not in self._index:
                raise GraphError(f"unknown vertex {v!r}")
            self._materialize()
        return super().neighbors(v)

    def copy(self) -> Graph:
        """A mutable, plain set-backed deep copy."""
        self._materialize()
        return super().copy()

    def subgraph(self, keep: Iterable[Vertex]) -> Graph:
        self._materialize()
        return super().subgraph(keep)

    def without(self, drop: Iterable[Vertex]) -> Graph:
        # Materialize *before* the base implementation captures an iterator
        # over the (possibly still empty) adjacency dict.
        self._materialize()
        return super().without(drop)

    # ------------------------------------------------------------------ #
    # Graph API overrides: structural mutations degrade first
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex, weight: float = 1.0) -> None:
        if self._index is not None and v in self._index:
            # Weight-only update: rows stay valid, Graph handles the rest.
            if weight < 0:
                raise GraphError(f"vertex {v!r} has negative weight {weight}")
            self._weights[v] = float(weight)
            self._mutations += 1
            return
        if self._rows is not None:
            self._degrade()
        super().add_vertex(v, weight)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        if self._rows is not None:
            self._degrade()
        super().add_edge(u, v)

    def remove_vertex(self, v: Vertex) -> None:
        if self._rows is not None:
            self._degrade()
        super().remove_vertex(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        if self._rows is not None:
            self._degrade()
        super().remove_edge(u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "dense" if self._rows is not None else "degraded"
        return f"DenseGraph(|V|={len(self)}, |E|={self.num_edges()}, {mode})"


def dense_rows_of(graph: Graph) -> Optional[List[int]]:
    """The dense rows of ``graph`` when it is a live :class:`DenseGraph`.

    The single dispatch predicate used by the chordal/clique/stable-set
    kernels: ``None`` means "use the set-based reference path".
    """
    if isinstance(graph, DenseGraph):
        return graph.dense_rows()
    return None


# ---------------------------------------------------------------------- #
# dense kernels — exact replicas of the set-based reference algorithms
# ---------------------------------------------------------------------- #
def dense_mcs(graph: DenseGraph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Maximum cardinality search on bitmask rows.

    Replicates :func:`repro.graphs.chordal.maximum_cardinality_search`
    bit-for-bit: same (visited-neighbour count, insertion-order tie) priority,
    same lazy-heap semantics, hence the same visit order — the heap entries
    are just packed into single ints.
    """
    rows = graph.dense_rows()
    assert rows is not None, "dense_mcs requires a live DenseGraph"
    n = len(rows)
    if n == 0:
        return []
    if start is not None and start not in graph:
        raise GraphError(f"unknown start vertex {start!r}")
    # Priority (count desc, tie asc) packed into one int:
    # key = (n - count) * (n + 1) + (tie + 1), tie == bit index == insertion
    # order.  The reference's optional (count 0, tie -1) start seed packs
    # collision-free as tie+1 == 0; a min-heap of these ints pops exactly
    # what the reference's (-count, tie, vertex) tuple heap pops.
    width = n + 1
    heap: List[int] = []
    start_bit: Optional[int] = None
    if start is not None:
        start_bit = graph.index_of(start)
        heap.append(n * width)
    for v in range(n):
        heap.append(n * width + v + 1)
    heapq.heapify(heap)
    counts = [0] * n
    unvisited = (1 << n) - 1
    order_out: List[int] = []
    while len(order_out) < n:
        while True:
            key = heapq.heappop(heap)
            tie = key % width
            v = start_bit if tie == 0 else tie - 1  # type: ignore[assignment]
            count = n - key // width
            if (unvisited >> v) & 1 and counts[v] == count:
                break
        unvisited ^= 1 << v
        order_out.append(v)
        for u in bit_indices(rows[v] & unvisited):
            c = counts[u] + 1
            counts[u] = c
            heapq.heappush(heap, (n - c) * width + u + 1)
    order = graph.vertex_order()
    return [order[i] for i in order_out]


def dense_is_peo(graph: DenseGraph, order: Sequence[Vertex]) -> bool:
    """Perfect-elimination-order check on bitmask rows.

    Replicates :func:`repro.graphs.chordal.is_perfect_elimination_order`
    (Golumbic's earliest-later-neighbour criterion) with mask arithmetic:
    the "is every other later neighbour adjacent to the pivot" test becomes
    one AND-NOT against the pivot's row.
    """
    rows = graph.dense_rows()
    assert rows is not None, "dense_is_peo requires a live DenseGraph"
    n = len(rows)
    if len(order) != n:
        return False
    index = graph._index
    assert index is not None
    try:
        peo_bits = [index[v] for v in order]
    except (KeyError, TypeError):
        return False
    if len(set(peo_bits)) != n:
        return False
    position = [0] * n
    for p, v in enumerate(peo_bits):
        position[v] = p
    later_of = [0] * n
    later = 0
    for v in reversed(peo_bits):
        later_of[v] = later
        later |= 1 << v
    for v in peo_bits:
        m = rows[v] & later_of[v]
        if not m:
            continue
        pivot = min(bit_indices(m), key=position.__getitem__)
        if (m ^ (1 << pivot)) & ~rows[pivot]:
            return False
    return True


def dense_chordal_clique_masks(
    graph: DenseGraph, peo: Sequence[Vertex]
) -> List[int]:
    """Candidate-clique masks ``{v} | later-neighbours(v)`` for each PEO vertex."""
    rows = graph.dense_rows()
    assert rows is not None, "dense_chordal_clique_masks requires a live DenseGraph"
    index = graph._index
    assert index is not None
    peo_bits = [index[v] for v in peo]
    later_of: Dict[int, int] = {}
    later = 0
    for v in reversed(peo_bits):
        later_of[v] = later
        later |= 1 << v
    return [(1 << v) | (rows[v] & later_of[v]) for v in peo_bits]


def dense_frank(
    graph: DenseGraph,
    weights: Dict[Vertex, float],
    peo: Sequence[Vertex],
    candidates: int,
) -> List[Vertex]:
    """Frank's maximum weighted stable set on bitmask rows.

    Replicates the marking/selection phases of
    :func:`repro.graphs.stable_set.maximum_weighted_stable_set` exactly
    (same PEO walk, same residual-weight updates, same reverse-marking
    greedy selection), with candidate filtering and the adjacency tests as
    mask operations.  ``candidates`` is a membership mask over the graph's
    bit order; ``peo`` may cover more vertices than the candidates, exactly
    like the reference.
    """
    rows = graph.dense_rows()
    assert rows is not None, "dense_frank requires a live DenseGraph"
    index = graph._index
    order = graph._order
    assert index is not None and order is not None

    peo_bits = [b for b in (index.get(v) for v in peo) if b is not None]
    covered = 0
    for b in peo_bits:
        covered |= 1 << b
    missing = candidates & ~covered
    if missing:
        absent = [order[i] for i in bit_indices(missing)]
        raise GraphError(f"peo missing candidate vertices: {absent!r}")

    later_of = [0] * len(rows)
    later = 0
    for b in reversed(peo_bits):
        later_of[b] = later
        later |= 1 << b

    residual = [0.0] * len(rows)
    for i in bit_indices(candidates):
        v = order[i]
        try:
            residual[i] = float(weights[v])
        except KeyError:
            raise GraphError(f"weights missing for vertices: {[order[i]]!r}") from None

    # Marking phase: vertices with positive residual, in PEO order; each
    # marked vertex's residual is subtracted (clamped at zero) from its
    # not-yet-processed candidate neighbours.  ``positive`` prunes neighbour
    # extraction to vertices whose residual can still change — residuals at
    # zero stay at zero under the reference's max(0, r - amount) update.
    marked: List[int] = []
    positive = candidates
    for v in peo_bits:
        if not (candidates >> v) & 1:
            continue
        amount = residual[v]
        if amount <= 0:
            continue
        marked.append(v)
        for u in bit_indices(rows[v] & later_of[v] & positive):
            x = residual[u] - amount
            if x > 0.0:
                residual[u] = x
            else:
                residual[u] = 0.0
                positive ^= 1 << u
        residual[v] = 0.0
        positive &= ~(1 << v)

    # Selection phase: reverse marking order, keep what is non-adjacent to
    # the kept set.
    chosen: List[Vertex] = []
    chosen_mask = 0
    for v in reversed(marked):
        if not (rows[v] & chosen_mask):
            chosen.append(order[v])
            chosen_mask |= 1 << v
    return chosen
