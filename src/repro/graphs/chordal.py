"""Chordality tests and perfect elimination orders.

The key structural fact exploited by the paper is that interference graphs of
SSA programs are chordal (intersection graphs of subtrees of the dominance
tree).  Chordal graphs admit a *perfect elimination order* (PEO): an ordering
``v1, ..., vn`` such that every ``vi`` is simplicial (its neighbourhood is a
clique) in the subgraph induced by ``{vi, ..., vn}``.

Two classical linear-time orderings are provided:

* :func:`maximum_cardinality_search` (MCS, Tarjan & Yannakakis 1984);
* :func:`lex_bfs` (lexicographic breadth-first search, Rose/Tarjan/Lueker).

For a chordal graph, the *reverse* of either visit order is a PEO;
:func:`is_perfect_elimination_order` verifies candidate orders and doubles as
the chordality test.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import GraphError, NotChordalError
from repro.graphs.graph import Graph, Vertex


def maximum_cardinality_search(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return the MCS visit order of ``graph``.

    The search repeatedly picks an unvisited vertex with the largest number of
    already-visited neighbours.  For chordal graphs, reversing this order
    yields a perfect elimination order.

    The implementation uses a lazy max-heap keyed by the visited-neighbour
    count, which keeps the complexity at ``O((|V|+|E|) log |V|)`` — effectively
    linear for interference graphs.  A live
    :class:`~repro.graphs.dense.DenseGraph` takes the bitmask kernel
    (:func:`~repro.graphs.dense.dense_mcs`), which returns the identical
    visit order without materializing adjacency sets.
    """
    if len(graph) == 0:
        return []
    from repro.graphs.dense import dense_mcs, dense_rows_of

    if dense_rows_of(graph) is not None:
        return dense_mcs(graph, start=start)
    if start is not None and start not in graph:
        raise GraphError(f"unknown start vertex {start!r}")

    order: List[Vertex] = []
    visited: Set[Vertex] = set()
    count: Dict[Vertex, int] = {v: 0 for v in graph}
    # Heap of (-count, tie, vertex); stale entries are skipped lazily.
    tie = {v: i for i, v in enumerate(graph)}
    heap: List[tuple] = []
    if start is not None:
        heapq.heappush(heap, (0, -1, start))
    for v in graph:
        heapq.heappush(heap, (0, tie[v], v))

    while len(order) < len(graph):
        while True:
            neg, _, v = heapq.heappop(heap)
            if v not in visited and -neg == count[v]:
                break
        visited.add(v)
        order.append(v)
        for u in graph.neighbors(v):
            if u not in visited:
                count[u] += 1
                heapq.heappush(heap, (-count[u], tie[u], u))
    return order


class _Block:
    """One block of the lex-BFS partition: an ordered set in a linked list."""

    __slots__ = ("members", "prev", "next", "split")

    def __init__(self) -> None:
        # Dicts preserve insertion order and give O(1) removal, so a block is
        # an ordered set: keys are the member vertices, values unused.
        self.members: Dict[Vertex, None] = {}
        self.prev: Optional["_Block"] = None
        self.next: Optional["_Block"] = None
        #: block receiving this block's pivot-neighbours during the current
        #: refinement step (reset after each pivot).
        self.split: Optional["_Block"] = None


def lex_bfs(graph: Graph, start: Optional[Vertex] = None) -> List[Vertex]:
    """Return a lexicographic BFS visit order of ``graph``.

    Implemented with the classical partition-refinement scheme: maintain an
    ordered list of vertex blocks; repeatedly take the first vertex of the
    first block, then move that vertex's neighbours to the front of their
    respective blocks (splitting each touched block in two, neighbours
    first).

    Only the pivot's neighbours are touched per step — blocks are kept in a
    doubly-linked list with O(1) membership moves — so the whole traversal is
    ``O(|V| + |E|)`` instead of the quadratic full-partition rebuild.  Ties
    are broken by graph insertion order (``start`` first when given), which
    keeps the order deterministic.
    """
    if len(graph) == 0:
        return []
    vertices = graph.vertices()
    if start is not None:
        if start not in graph:
            raise GraphError(f"unknown start vertex {start!r}")
        vertices = [start] + [v for v in vertices if v != start]

    # Process each pivot's neighbours in tie-break (insertion) order so the
    # split blocks' internal order — hence the final order — is deterministic.
    sorted_adj: Dict[Vertex, List[Vertex]] = {v: [] for v in vertices}
    for v in vertices:  # bucket pass: emits every adjacency list rank-sorted
        for u in graph.neighbors(v):
            sorted_adj[u].append(v)

    head = _Block()
    head.members = dict.fromkeys(vertices)
    block_of: Dict[Vertex, _Block] = {v: head for v in vertices}

    order: List[Vertex] = []
    while head is not None:
        v = next(iter(head.members))
        del head.members[v]
        del block_of[v]
        order.append(v)
        if not head.members:
            head = head.next
            if head is not None:
                head.prev = None

        touched: List[_Block] = []
        for u in sorted_adj[v]:
            block = block_of.get(u)
            if block is None:
                continue  # u already visited
            if block.split is None:
                # Open the receiving block immediately before ``block``.
                receiver = _Block()
                receiver.prev = block.prev
                receiver.next = block
                if block.prev is not None:
                    block.prev.next = receiver
                else:
                    head = receiver
                block.prev = receiver
                block.split = receiver
                touched.append(block)
            block.split.members[u] = None
            del block.members[u]
            block_of[u] = block.split

        for block in touched:
            block.split = None
            if not block.members:  # every member was a neighbour: drop shell
                receiver = block.prev
                receiver.next = block.next
                if block.next is not None:
                    block.next.prev = receiver
    return order


def is_perfect_elimination_order(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Check whether ``order`` is a perfect elimination order of ``graph``.

    Uses the standard trick: for each vertex ``v`` it suffices to check that
    the *earliest* later neighbour ``u`` of ``v`` is adjacent to every other
    later neighbour of ``v`` (Golumbic 2004, Thm. 4.5), which is ``O(|V|+|E|)``
    amortized instead of checking full cliques.  Live
    :class:`~repro.graphs.dense.DenseGraph` inputs run the equivalent check
    on bitmask rows.
    """
    from repro.graphs.dense import dense_is_peo, dense_rows_of

    if dense_rows_of(graph) is not None:
        return dense_is_peo(graph, order)
    if set(order) != set(graph.vertices()) or len(order) != len(graph):
        return False
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        later = [u for u in graph.neighbors(v) if position[u] > position[v]]
        if not later:
            continue
        pivot = min(later, key=lambda u: position[u])
        pivot_nbrs = graph.neighbors(pivot)
        for u in later:
            if u is pivot or u == pivot:
                continue
            if u not in pivot_nbrs:
                return False
    return True


def perfect_elimination_order(graph: Graph) -> List[Vertex]:
    """Return a perfect elimination order of a chordal ``graph``.

    Raises :class:`~repro.errors.NotChordalError` if the graph is not chordal.
    """
    order = list(reversed(maximum_cardinality_search(graph)))
    if not is_perfect_elimination_order(graph, order):
        raise NotChordalError("graph is not chordal: no perfect elimination order exists")
    return order


def is_chordal(graph: Graph) -> bool:
    """Return whether ``graph`` is chordal (every cycle ≥ 4 has a chord)."""
    order = list(reversed(maximum_cardinality_search(graph)))
    return is_perfect_elimination_order(graph, order)


def simplicial_vertices(graph: Graph) -> List[Vertex]:
    """Return all simplicial vertices (neighbourhood is a clique)."""
    return [v for v in graph if graph.is_clique(graph.neighbors(v))]
