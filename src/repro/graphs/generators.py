"""Random graph generators.

The synthetic workloads (see :mod:`repro.workloads`) derive interference
graphs from generated *programs*, which is the faithful path.  The generators
in this module produce weighted graphs directly and are used by:

* the property-based tests (random chordal / general graphs of known
  structure);
* micro-benchmarks that need graphs of a controlled size and density without
  paying the program-generation cost.

All generators take a :class:`random.Random` instance (or a seed) so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graphs.graph import Graph, Vertex

RandomLike = Union[random.Random, int, None]


def _rng(seed_or_rng: RandomLike) -> random.Random:
    """Normalize a seed / Random / None into a Random instance."""
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def _vertex_names(n: int, prefix: str = "v") -> List[str]:
    """Generate ``n`` stable vertex names: v0, v1, ..."""
    return [f"{prefix}{i}" for i in range(n)]


def random_weights(
    names: Sequence[Vertex],
    rng: RandomLike = None,
    low: float = 1.0,
    high: float = 100.0,
    loop_bias: float = 0.3,
) -> Dict[Vertex, float]:
    """Draw spill-cost weights with a loop-nest-like skew.

    A fraction ``loop_bias`` of the variables get their weight multiplied by
    10 or 100, mimicking accesses inside nested loops, which is the shape of
    real frequency-based spill costs.
    """
    r = _rng(rng)
    weights: Dict[Vertex, float] = {}
    for v in names:
        w = r.uniform(low, high)
        if r.random() < loop_bias:
            w *= 10.0 ** r.randint(1, 2)
        weights[v] = round(w, 3)
    return weights


def random_interval_graph(
    n: int,
    rng: RandomLike = None,
    max_length: int = 20,
    span: Optional[int] = None,
    weights: Optional[Dict[Vertex, float]] = None,
) -> Tuple[Graph, Dict[Vertex, Tuple[int, int]]]:
    """Generate a random interval graph (always chordal).

    Interval graphs model liveness within a single basic block: each variable
    is an interval ``[start, end)`` on the instruction axis and two variables
    interfere iff their intervals overlap.  Returns the graph and the interval
    map so callers (e.g. the linear-scan tests) can reuse the intervals.
    """
    r = _rng(rng)
    span = span if span is not None else max(4, n * 3)
    names = _vertex_names(n)
    intervals: Dict[Vertex, Tuple[int, int]] = {}
    for v in names:
        start = r.randint(0, span - 1)
        end = min(span, start + 1 + r.randint(0, max_length - 1))
        intervals[v] = (start, end)
    graph = Graph()
    if weights is None:
        weights = random_weights(names, r)
    for v in names:
        graph.add_vertex(v, weights[v])
    for i, u in enumerate(names):
        su, eu = intervals[u]
        for v in names[i + 1 :]:
            sv, ev = intervals[v]
            if su < ev and sv < eu:
                graph.add_edge(u, v)
    return graph, intervals


def random_chordal_graph(
    n: int,
    rng: RandomLike = None,
    extra_edge_prob: float = 0.3,
    weights: Optional[Dict[Vertex, float]] = None,
) -> Graph:
    """Generate a random chordal graph by incremental simplicial insertion.

    Each new vertex is connected to a random clique of the existing graph,
    which preserves chordality by construction (the new vertex is simplicial
    at insertion time).  ``extra_edge_prob`` controls the expected size of the
    clique the new vertex attaches to and hence the density.
    """
    r = _rng(rng)
    names = _vertex_names(n)
    if weights is None:
        weights = random_weights(names, r)
    graph = Graph()
    cliques: List[List[Vertex]] = []
    for v in names:
        graph.add_vertex(v, weights[v])
        if cliques and r.random() < 0.9:
            base = list(r.choice(cliques))
            keep = [u for u in base if r.random() < max(extra_edge_prob, 1.0 / max(len(base), 1))]
            if not keep and base:
                keep = [r.choice(base)]
            for u in keep:
                graph.add_edge(v, u)
            cliques.append(keep + [v])
        else:
            cliques.append([v])
    return graph


def random_general_graph(
    n: int,
    rng: RandomLike = None,
    edge_prob: float = 0.15,
    weights: Optional[Dict[Vertex, float]] = None,
) -> Graph:
    """Generate an Erdős–Rényi ``G(n, p)`` graph with spill-cost weights.

    Such graphs are typically non-chordal for moderate ``p`` and stand in for
    the interference graphs of non-SSA programs.
    """
    r = _rng(rng)
    names = _vertex_names(n)
    if weights is None:
        weights = random_weights(names, r)
    graph = Graph()
    for v in names:
        graph.add_vertex(v, weights[v])
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            if r.random() < edge_prob:
                graph.add_edge(u, v)
    return graph


def cycle_graph(n: int, weights: Optional[Dict[Vertex, float]] = None) -> Graph:
    """Build the cycle ``C_n`` — the canonical non-chordal graph for n ≥ 4."""
    names = _vertex_names(n)
    graph = Graph()
    for v in names:
        graph.add_vertex(v, (weights or {}).get(v, 1.0))
    for i in range(n):
        graph.add_edge(names[i], names[(i + 1) % n])
    return graph


def complete_graph(n: int, weights: Optional[Dict[Vertex, float]] = None) -> Graph:
    """Build the complete graph ``K_n`` (maximal register pressure everywhere)."""
    names = _vertex_names(n)
    graph = Graph()
    for v in names:
        graph.add_vertex(v, (weights or {}).get(v, 1.0))
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            graph.add_edge(u, v)
    return graph


def path_graph(n: int, weights: Optional[Dict[Vertex, float]] = None) -> Graph:
    """Build the path ``P_n`` (a tree, hence chordal and 2-colorable)."""
    names = _vertex_names(n)
    graph = Graph()
    for v in names:
        graph.add_vertex(v, (weights or {}).get(v, 1.0))
    for i in range(n - 1):
        graph.add_edge(names[i], names[i + 1])
    return graph
