"""Maximum weighted stable (independent) sets.

The heart of the layered-optimal allocator: with ``step = 1`` register, the
optimal allocation on a chordal interference graph is exactly a maximum
weighted stable set, computable in ``O(|V|+|E|)`` with Frank's algorithm
(Frank 1975) given a perfect elimination order — the paper's Algorithm 1.

Three implementations are provided:

* :func:`maximum_weighted_stable_set` — Frank's exact algorithm for chordal
  graphs (the paper's Algorithm 1);
* :func:`greedy_weighted_stable_set` — the greedy approximation used by the
  layered *heuristic* on general graphs (inner loop of Algorithm 5);
* :func:`brute_force_max_weight_stable_set` — an exponential reference used by
  the test suite to validate the two above on small graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import GraphError
from repro.graphs.chordal import perfect_elimination_order
from repro.graphs.graph import Graph, Vertex


def is_stable_set(graph: Graph, vertices: Iterable[Vertex]) -> bool:
    """Return whether ``vertices`` are pairwise non-adjacent in ``graph``."""
    vs = list(vertices)
    for i, u in enumerate(vs):
        for v in vs[i + 1 :]:
            if graph.has_edge(u, v):
                return False
    return True


def maximum_weighted_stable_set(
    graph: Graph,
    weights: Optional[Dict[Vertex, float]] = None,
    peo: Optional[Sequence[Vertex]] = None,
    candidates: Optional[Iterable[Vertex]] = None,
) -> List[Vertex]:
    """Compute a maximum weighted stable set of a chordal graph.

    This is the paper's Algorithm 1 (Frank's algorithm).  The two phases are:

    1. *Marking (red)*: walk the vertices in PEO order; whenever the residual
       weight of the current vertex is positive, mark it and subtract its
       residual weight from the residual weights of its not-yet-processed
       neighbours (clamping at zero).
    2. *Selection (blue)*: walk the marked vertices in reverse marking order,
       greedily keeping each one that is not adjacent to an already kept
       vertex.

    ``weights`` overrides the graph's vertex weights (used by the biased
    layered allocator, which searches with biased weights while accounting
    costs with the original ones).  Vertices with weight ``0`` never enter the
    result, matching the paper: allocating a never-accessed value cannot
    reduce the spill cost.

    ``candidates`` restricts the search to the induced subgraph on a vertex
    subset *without materializing it*: the PEO walk and the neighbour updates
    simply skip non-candidates.  Because an induced subgraph of a chordal
    graph is chordal and the restriction of a PEO is still a PEO, a single
    ``peo`` of the full graph can be reused across many candidate masks —
    this is what keeps the layered allocator within the paper's
    ``O(R·(|V|+|E|))`` bound.  Entries of ``candidates`` absent from the
    graph are ignored (mirroring :meth:`Graph.subgraph`); ``weights`` only
    needs to cover the candidates.

    Raises :class:`~repro.errors.NotChordalError` when the graph is not
    chordal and no valid ``peo`` is supplied.
    """
    if len(graph) == 0:
        return []

    if candidates is None:
        cand: Set[Vertex] = set(graph.vertices())
    else:
        cand = {v for v in candidates if v in graph}
        if not cand:
            return []
    if peo is None:
        base = graph if len(cand) == len(graph) else graph.induced_view(cand)
        peo = perfect_elimination_order(base)
    if weights is None:
        weights = {v: graph.weight(v) for v in cand}
    else:
        missing = [v for v in cand if v not in weights]
        if missing:
            raise GraphError(f"weights missing for vertices: {missing!r}")

    from repro.graphs.dense import dense_frank, dense_rows_of

    if dense_rows_of(graph) is not None:
        # Bitmask fast path: identical marking order, residual updates and
        # reverse-marking selection, so the result (and its order) matches
        # the set-based walk below exactly.
        return dense_frank(graph, weights, peo, graph.mask_of(cand))

    position: Dict[Vertex, int] = {}
    for v in peo:
        if v in cand:
            position[v] = len(position)
    if len(position) != len(cand):
        absent = [v for v in cand if v not in position]
        raise GraphError(f"peo missing candidate vertices: {absent!r}")

    residual: Dict[Vertex, float] = {v: float(weights[v]) for v in cand}
    marked: List[Vertex] = []
    for v in peo:
        if v not in cand or residual[v] <= 0:
            continue
        marked.append(v)
        amount = residual[v]
        pos_v = position[v]
        for u in graph.neighbors(v):
            if u in cand and position[u] > pos_v:
                residual[u] = max(0.0, residual[u] - amount)
        residual[v] = 0.0

    chosen: List[Vertex] = []
    chosen_set: Set[Vertex] = set()
    for v in reversed(marked):
        if not (graph.neighbors(v) & chosen_set):
            chosen.append(v)
            chosen_set.add(v)
    return chosen


def greedy_weighted_stable_set(
    graph: Graph,
    candidates: Optional[Sequence[Vertex]] = None,
    weights: Optional[Dict[Vertex, float]] = None,
) -> List[Vertex]:
    """Greedy approximation of the maximum weighted stable set.

    Used by the layered *heuristic* on general interference graphs (inner
    while-loop of Algorithm 5): repeatedly take the heaviest remaining
    candidate and discard its neighbours.  The quality of the layered
    heuristic is directly the quality of this approximation.
    """
    if weights is None:
        weights = graph.weights()
    if candidates is None:
        candidates = graph.vertices()
    order = sorted(candidates, key=lambda v: (-weights[v], str(v)))
    chosen: List[Vertex] = []
    excluded: Set[Vertex] = set()
    for v in order:
        if v in excluded:
            continue
        chosen.append(v)
        excluded.add(v)
        excluded |= graph.neighbors(v)
    return chosen


def brute_force_max_weight_stable_set(
    graph: Graph, weights: Optional[Dict[Vertex, float]] = None
) -> List[Vertex]:
    """Exact maximum weighted stable set by exhaustive search.

    Only intended for the test suite (graphs of up to ~20 vertices); raises
    :class:`~repro.errors.GraphError` beyond that to avoid accidental blow-ups.
    """
    n = len(graph)
    if n > 22:
        raise GraphError(f"brute force limited to 22 vertices, got {n}")
    if weights is None:
        weights = graph.weights()
    vertices = graph.vertices()
    best: List[Vertex] = []
    best_weight = 0.0
    for size in range(n, 0, -1):
        for subset in combinations(vertices, size):
            if is_stable_set(graph, subset):
                w = sum(weights[v] for v in subset)
                if w > best_weight:
                    best_weight = w
                    best = list(subset)
    return best


def stable_set_weight(graph: Graph, vertices: Iterable[Vertex]) -> float:
    """Return the total weight of ``vertices`` using the graph's weights."""
    return sum(graph.weight(v) for v in vertices)
