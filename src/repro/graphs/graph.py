"""A small weighted undirected graph.

The allocators in :mod:`repro.alloc` consume *interference graphs*: vertices
are program variables, edges mean "simultaneously live somewhere", and the
vertex weight is the estimated spill cost of the variable.  This module keeps
the representation deliberately simple — adjacency sets over hashable vertex
identifiers — so the graph algorithms stay readable and match the pseudo-code
in the paper.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

from repro.errors import GraphError

Vertex = Hashable


class Graph:
    """An undirected graph with non-negative vertex weights.

    Vertices may be any hashable value (the library uses strings for variable
    names).  Self-loops are rejected; parallel edges collapse into one.

    Example
    -------
    >>> g = Graph()
    >>> g.add_vertex("a", weight=2.0)
    >>> g.add_vertex("b", weight=5.0)
    >>> g.add_edge("a", "b")
    >>> sorted(g.neighbors("a"))
    ['b']
    >>> g.weight("b")
    5.0
    """

    __slots__ = ("_adj", "_weights", "_mutations")

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._weights: Dict[Vertex, float] = {}
        self._mutations: int = 0

    @property
    def mutation_stamp(self) -> int:
        """Monotonic counter bumped by every mutating operation.

        Consumers that cache structures derived from the graph (PEO, maximal
        cliques, digests — see :class:`repro.alloc.problem.AllocationProblem`)
        snapshot this stamp when they fill their cache and invalidate when it
        moves, so mutating a graph after derivation cannot serve stale data.
        """
        return self._mutations

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex, weight: float = 1.0) -> None:
        """Add vertex ``v`` with the given spill-cost ``weight``.

        Adding an existing vertex updates its weight but keeps its edges.
        Negative weights are rejected: spill costs are access frequencies.
        """
        if weight < 0:
            raise GraphError(f"vertex {v!r} has negative weight {weight}")
        if v not in self._adj:
            self._adj[v] = set()
        self._weights[v] = float(weight)
        self._mutations += 1

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``; endpoints are created lazily."""
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if u not in self._adj:
            self.add_vertex(u)
        if v not in self._adj:
            self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._mutations += 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        if v not in self._adj:
            raise GraphError(f"unknown vertex {v!r}")
        for u in self._adj[v]:
            self._adj[u].discard(v)
        del self._adj[v]
        del self._weights[v]
        self._mutations += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)`` if present."""
        if u not in self._adj or v not in self._adj:
            raise GraphError(f"unknown endpoint in edge ({u!r}, {v!r})")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._mutations += 1

    def set_weight(self, v: Vertex, weight: float) -> None:
        """Update the weight of an existing vertex."""
        if v not in self._weights:
            raise GraphError(f"unknown vertex {v!r}")
        if weight < 0:
            raise GraphError(f"vertex {v!r} has negative weight {weight}")
        self._weights[v] = float(weight)
        self._mutations += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def vertices(self) -> List[Vertex]:
        """Return the vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> List[Tuple[Vertex, Vertex]]:
        """Return each undirected edge exactly once."""
        seen: Set[Tuple[int, int]] = set()
        result: List[Tuple[Vertex, Vertex]] = []
        index = {v: i for i, v in enumerate(self._adj)}
        for u in self._adj:
            for v in self._adj[u]:
                key = (index[u], index[v]) if index[u] < index[v] else (index[v], index[u])
                if key not in seen:
                    seen.add(key)
                    result.append((u, v) if index[u] < index[v] else (v, u))
        return result

    def num_edges(self) -> int:
        """Return the number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the adjacency set of ``v`` (do not mutate it)."""
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"unknown vertex {v!r}") from None

    def degree(self, v: Vertex) -> int:
        """Return the number of neighbours of ``v``."""
        return len(self.neighbors(v))

    def weight(self, v: Vertex) -> float:
        """Return the spill-cost weight of ``v``."""
        try:
            return self._weights[v]
        except KeyError:
            raise GraphError(f"unknown vertex {v!r}") from None

    def weights(self) -> Dict[Vertex, float]:
        """Return a copy of the weight map."""
        return dict(self._weights)

    def total_weight(self, vertices: Iterable[Vertex] | None = None) -> float:
        """Return the summed weight of ``vertices`` (all vertices if omitted)."""
        if vertices is None:
            return sum(self._weights.values())
        return sum(self.weight(v) for v in vertices)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return whether ``u`` and ``v`` interfere."""
        return u in self._adj and v in self._adj[u]

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        g = Graph()
        for v, w in self._weights.items():
            g.add_vertex(v, w)
        for u in self._adj:
            for v in self._adj[u]:
                g._adj[u].add(v)
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph on ``keep`` (unknown vertices ignored)."""
        keep_set = {v for v in keep if v in self._adj}
        g = Graph()
        for v in self._adj:
            if v in keep_set:
                g.add_vertex(v, self._weights[v])
        for v in g.vertices():
            for u in self._adj[v]:
                if u in keep_set:
                    g._adj[v].add(u)
        return g

    def without(self, drop: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph with ``drop`` removed."""
        drop_set = set(drop)
        return self.subgraph(v for v in self._adj if v not in drop_set)

    def induced_view(self, keep: Iterable[Vertex]) -> "GraphView":
        """Return a read-only *view* of the induced subgraph on ``keep``.

        Unlike :meth:`subgraph`, no adjacency sets are copied: the view keeps
        a reference to this graph plus the membership mask and filters lazily.
        Building a view is ``O(|keep|)``; every query pays at most the degree
        of the queried vertex.  This is what lets the layered allocators run a
        round over the remaining candidates without materializing a fresh
        graph per round.  Unknown vertices in ``keep`` are ignored, matching
        :meth:`subgraph`.  The view reflects later mutations of the base
        graph; do not mutate the base while holding a view.
        """
        return GraphView(self, keep)

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return whether ``vertices`` are pairwise adjacent."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            for v in vs[i + 1 :]:
                if not self.has_edge(u, v):
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={len(self)}, |E|={self.num_edges()})"

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        weights: Dict[Vertex, float] | None = None,
        isolated: Iterable[Vertex] = (),
    ) -> "Graph":
        """Build a graph from an edge list plus optional weights.

        ``isolated`` lists vertices with no incident edge so they still
        participate in the allocation problem.
        """
        g = cls()
        weights = weights or {}
        for v in isolated:
            g.add_vertex(v, weights.get(v, 1.0))
        for u, v in edges:
            g.add_edge(u, v)
        for v, w in weights.items():
            if v not in g:
                g.add_vertex(v, w)
            else:
                g.set_weight(v, w)
        return g


class GraphView:
    """A read-only induced-subgraph view sharing the base graph's storage.

    Implements the query surface of :class:`Graph` (membership, iteration,
    ``neighbors``, weights, ``has_edge``, ...) restricted to a vertex mask,
    so graph algorithms written against :class:`Graph` — MCS, lex-BFS, PEO
    validation, Frank's algorithm — run on the view unchanged and without
    the ``O(|V|+|E|)`` copy that :meth:`Graph.subgraph` pays.

    ``neighbors`` builds the filtered adjacency set on demand (``O(deg)``);
    callers that only need membership tests should prefer ``has_edge``.
    """

    __slots__ = ("_base", "_keep")

    def __init__(self, base: Graph, keep: Iterable[Vertex]) -> None:
        self._base = base
        self._keep: Set[Vertex] = {v for v in keep if v in base}

    # -- queries (mirror Graph's read API) ----------------------------- #
    def __contains__(self, v: Vertex) -> bool:
        return v in self._keep

    def __len__(self) -> int:
        return len(self._keep)

    def __iter__(self) -> Iterator[Vertex]:
        # Preserve the base graph's insertion order, like Graph.subgraph.
        return (v for v in self._base if v in self._keep)

    def vertices(self) -> List[Vertex]:
        """Return the kept vertices in base-graph insertion order."""
        return [v for v in self._base if v in self._keep]

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        """Return the kept neighbours of ``v`` (a fresh set, O(deg))."""
        if v not in self._keep:
            raise GraphError(f"unknown vertex {v!r}")
        return self._base.neighbors(v) & self._keep

    def degree(self, v: Vertex) -> int:
        return len(self.neighbors(v))

    def weight(self, v: Vertex) -> float:
        if v not in self._keep:
            raise GraphError(f"unknown vertex {v!r}")
        return self._base.weight(v)

    def weights(self) -> Dict[Vertex, float]:
        return {v: self._base.weight(v) for v in self.vertices()}

    def total_weight(self, vertices: Iterable[Vertex] | None = None) -> float:
        if vertices is None:
            vertices = self._keep
        return sum(self.weight(v) for v in vertices)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._keep and v in self._keep and self._base.has_edge(u, v)

    def num_edges(self) -> int:
        return sum(len(self.neighbors(v)) for v in self._keep) // 2

    def edges(self) -> List[Tuple[Vertex, Vertex]]:
        index = {v: i for i, v in enumerate(self.vertices())}
        result: List[Tuple[Vertex, Vertex]] = []
        for u in self.vertices():
            for v in self.neighbors(u):
                if index[u] < index[v]:
                    result.append((u, v))
        return result

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        vs = list(vertices)
        for i, u in enumerate(vs):
            for v in vs[i + 1 :]:
                if not self.has_edge(u, v):
                    return False
        return True

    def materialize(self) -> Graph:
        """Copy the view into a standalone :class:`Graph`."""
        return self._base.subgraph(self._keep)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphView(|V|={len(self)} of {len(self._base)})"
