"""Persistent experiment store: content-addressed caching of sweep results.

The paper's evaluation is a large sweep of allocators × register counts over
corpora of interference graphs.  This package persists every computed cell so
the sweep is *resumable* (an interrupted run restarts where it died) and
*incremental* (an unchanged corpus re-sweeps with zero allocator calls),
decoupling the expensive ``sweep`` from the cheap ``aggregate``/``report``
stages of the pipeline (see ``repro-alloc sweep / aggregate / report``).

Cache keys are ``(problem_digest, allocator, allocator_version, R)`` — see
:mod:`repro.store.keys` for the digest contract and
:attr:`repro.alloc.base.Allocator.version` for when a version bump is
required.  Two interchangeable backends are provided: SQLite (default) and
append-only JSONL.
"""

from repro.store.base import (
    ExperimentStore,
    RunManifest,
    current_git_rev,
    open_store,
    record_from_dict,
    record_to_dict,
)
from repro.store.jsonl import JsonlExperimentStore, StoreFormatError
from repro.store.keys import CellKey, problem_digest
from repro.store.merge import MergeReport, merge_batches
from repro.store.sqlite import SqliteExperimentStore

__all__ = [
    "CellKey",
    "ExperimentStore",
    "JsonlExperimentStore",
    "MergeReport",
    "RunManifest",
    "SqliteExperimentStore",
    "StoreFormatError",
    "current_git_rev",
    "merge_batches",
    "open_store",
    "problem_digest",
    "record_from_dict",
    "record_to_dict",
]
