"""Experiment-store interface, run manifests and record serialization.

An :class:`ExperimentStore` is a durable map from :class:`~repro.store.keys.CellKey`
to one :class:`~repro.experiments.runner.InstanceRecord`, plus an append-only
log of :class:`RunManifest` provenance entries (one per sweep).  Two backends
ship with the library — SQLite (:mod:`repro.store.sqlite`, the default) and
JSONL (:mod:`repro.store.jsonl`) — with identical semantics, checked by the
backend-parity tests.

Stores are cheap to reopen: an interrupted sweep leaves every flushed cell
behind, and the next ``run_experiment(..., store=..., resume=True)`` computes
only the missing ones.
"""

from __future__ import annotations

import abc
import dataclasses
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.store.keys import CellKey
from repro.telemetry.tracer import current_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.runner import InstanceRecord


# ---------------------------------------------------------------------- #
# record (de)serialization
# ---------------------------------------------------------------------- #
def record_to_dict(record: "InstanceRecord") -> Dict[str, Any]:
    """Convert an :class:`InstanceRecord` to a JSON-serializable dict."""
    return dataclasses.asdict(record)


def record_from_dict(data: Dict[str, Any]) -> "InstanceRecord":
    """Reconstruct an :class:`InstanceRecord` from :func:`record_to_dict`."""
    from repro.experiments.runner import InstanceRecord

    return InstanceRecord(
        instance=str(data["instance"]),
        program=str(data["program"]),
        allocator=str(data["allocator"]),
        num_registers=int(data["num_registers"]),
        spill_cost=float(data["spill_cost"]),
        num_spilled=int(data["num_spilled"]),
        num_variables=int(data["num_variables"]),
        max_pressure=int(data["max_pressure"]),
        runtime_seconds=float(data["runtime_seconds"]),
        stats=dict(data.get("stats") or {}),
        spilled=(
            [str(name) for name in data["spilled"]]
            if data.get("spilled") is not None
            else None
        ),
    )


# ---------------------------------------------------------------------- #
# run manifests
# ---------------------------------------------------------------------- #
@dataclasses.dataclass
class RunManifest:
    """Provenance of one sweep: what ran, over what, and how much was cached."""

    run_id: str
    created_at: str
    suite: Optional[str]
    target: Optional[str]
    seed: Optional[int]
    scale: Optional[float]
    config: Dict[str, Any]
    git_rev: str
    instances: int
    cells_total: int
    cells_computed: int
    cells_cached: int
    wall_time_seconds: float
    #: per-allocator cache split, ``{allocator: {"hit": n, "miss": m}}``
    #: (empty for manifests written before this field existed — their
    #: run-level ``cells_cached``/``cells_computed`` remain authoritative).
    cache_by_allocator: Dict[str, Dict[str, int]] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    @property
    def hit_rate(self) -> float:
        """Fraction of cells served from the store (1.0 for an empty sweep)."""
        return self.cells_cached / self.cells_total if self.cells_total else 1.0


def utc_now_iso() -> str:
    """Current UTC time in ISO-8601 form, for manifests and cell stamps."""
    return datetime.now(timezone.utc).isoformat()


def current_git_rev(cwd: Union[str, Path, None] = None) -> str:
    """Short git revision of ``cwd`` (or the process cwd); ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


# ---------------------------------------------------------------------- #
# store interface
# ---------------------------------------------------------------------- #
class ExperimentStore(abc.ABC):
    """Durable, content-addressed map of experiment cells plus run manifests."""

    #: backend identifier (``"sqlite"`` or ``"jsonl"``).
    backend: str = "abstract"

    # -- cells --------------------------------------------------------- #
    def get_many(self, keys: Iterable[CellKey]) -> Dict[CellKey, "InstanceRecord"]:
        """Return the cached records for the subset of ``keys`` present.

        Lookups are counted into the ambient tracer (no-op by default) as
        ``store.<backend>.hit`` / ``store.<backend>.miss`` — one count per
        key, shared by both backends through this wrapper.
        """
        key_list = list(keys)
        found = self._get_many(key_list)
        tracer = current_tracer()
        if tracer.enabled and key_list:
            tracer.count(f"store.{self.backend}.hit", len(found))
            tracer.count(f"store.{self.backend}.miss", len(key_list) - len(found))
        return found

    def put_many(self, items: Iterable[Tuple[CellKey, "InstanceRecord"]]) -> None:
        """Insert (or overwrite) cells; durable once :meth:`flush` returns.

        Writes are counted as ``store.<backend>.put`` (one per cell).
        """
        item_list = list(items)
        self._put_many(item_list)
        tracer = current_tracer()
        if tracer.enabled and item_list:
            tracer.count(f"store.{self.backend}.put", len(item_list))

    @abc.abstractmethod
    def _get_many(self, keys: List[CellKey]) -> Dict[CellKey, "InstanceRecord"]:
        """Backend lookup (no telemetry; the public wrapper counts)."""

    @abc.abstractmethod
    def _put_many(self, items: List[Tuple[CellKey, "InstanceRecord"]]) -> None:
        """Backend write (no telemetry; the public wrapper counts)."""

    @abc.abstractmethod
    def items(self) -> List[Tuple[CellKey, "InstanceRecord"]]:
        """All cells in a deterministic order (instance, R, allocator, key)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of cached cells."""

    def get(self, key: CellKey) -> Optional["InstanceRecord"]:
        """Return one cached record, or ``None``."""
        return self.get_many([key]).get(key)

    def put(self, key: CellKey, record: "InstanceRecord") -> None:
        """Insert (or overwrite) one cell."""
        self.put_many([(key, record)])

    def __contains__(self, key: CellKey) -> bool:
        return bool(self.get_many([key]))

    def keys(self) -> List[CellKey]:
        """All cell keys, in :meth:`items` order."""
        return [key for key, _ in self.items()]

    def records(self) -> List["InstanceRecord"]:
        """All cached records, in :meth:`items` order — the aggregation input."""
        return [record for _, record in self.items()]

    # -- manifests ----------------------------------------------------- #
    @abc.abstractmethod
    def add_manifest(self, manifest: RunManifest) -> None:
        """Append one run manifest."""

    @abc.abstractmethod
    def manifests(self) -> List[RunManifest]:
        """All manifests in insertion order."""

    # -- lifecycle ----------------------------------------------------- #
    def flush(self) -> None:
        """Make every prior write durable (counted as ``store.<backend>.flush``)."""
        self._flush()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count(f"store.{self.backend}.flush")

    @abc.abstractmethod
    def _flush(self) -> None:
        """Backend durability point (no telemetry; the public wrapper counts)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release the backing resources."""

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _items_sort_key(pair: Tuple[CellKey, "InstanceRecord"]) -> Tuple:
    """Deterministic total order shared by both backends (backend parity)."""
    key, record = pair
    return (
        record.instance,
        record.program,
        key.num_registers,
        key.allocator,
        key.allocator_version,
        key.problem_digest,
    )


def open_store(
    path: Union[str, Path], backend: Optional[str] = None
) -> ExperimentStore:
    """Open (creating if needed) the experiment store at ``path``.

    The backend is ``backend`` when given, else inferred from the suffix:
    ``*.jsonl`` opens the append-only JSONL backend, anything else SQLite.
    """
    path = Path(path)
    if backend is None:
        backend = "jsonl" if path.suffix == ".jsonl" else "sqlite"
    if backend == "sqlite":
        from repro.store.sqlite import SqliteExperimentStore

        return SqliteExperimentStore(path)
    if backend == "jsonl":
        from repro.store.jsonl import JsonlExperimentStore

        return JsonlExperimentStore(path)
    raise ValueError(f"unknown store backend {backend!r}; expected 'sqlite' or 'jsonl'")
