"""Fuse independently produced experiment-store shards into one store.

A distributed sweep (``repro-alloc sweep --backend service`` against
several service endpoints, or several local sweeps over corpus shards)
leaves one store per shard.  :func:`merge_batches` folds any number of
source shards into a destination store so the downstream ``aggregate`` /
``report`` stages see one coherent cell map:

* a key absent from the destination is copied (**added**);
* a key present with an *identical deterministic payload* is skipped
  (**deduped**) — the volatile ``runtime_seconds`` measurement is excluded
  from the comparison, exactly like the job-result determinism contract of
  :mod:`repro.service.api`;
* a key present with a *different* deterministic payload raises
  :class:`~repro.errors.MergeConflictError` before anything from the
  offending source is written — shards that disagree about a cell were
  produced by incompatible code, and fusing them would silently poison
  every figure built on top.

Run manifests are fused too (provenance survives the merge): the
destination ends up with the union of all manifests, deduplicated by
``run_id`` and appended in ``(created_at, run_id)`` order, so a merged
store replays the same history regardless of source order.

Backends mix freely — JSONL shards can merge into a SQLite destination
and vice versa; both expose the same :class:`~repro.store.base.ExperimentStore`
surface.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.errors import MergeConflictError
from repro.store.base import ExperimentStore, open_store, record_to_dict
from repro.telemetry.tracer import current_tracer

#: cells compare on their deterministic fields only; a cold shard and a
#: warm shard that computed the same cell must dedupe despite timings.
_VOLATILE_RECORD_FIELDS = ("runtime_seconds",)


@dataclasses.dataclass
class MergeReport:
    """What one :func:`merge_batches` call did, per category."""

    #: cells copied into the destination (absent before the merge).
    added: int = 0
    #: cells skipped because the destination already held an identical
    #: deterministic payload.
    deduped: int = 0
    #: manifests appended to the destination's provenance log.
    manifests_added: int = 0
    #: source shards processed.
    sources: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def _deterministic_payload(record: Any) -> Dict[str, Any]:
    """A record's comparison form: everything measurement-independent."""
    payload = record_to_dict(record)
    for field in _VOLATILE_RECORD_FIELDS:
        payload.pop(field, None)
    return payload


def merge_batches(
    dest: Union[str, ExperimentStore],
    sources: Sequence[Union[str, ExperimentStore]],
    *,
    flush: bool = True,
) -> MergeReport:
    """Merge the ``sources`` shards into ``dest`` (see the module docstring).

    ``dest`` and each source may be an open :class:`ExperimentStore` or a
    path (opened via :func:`~repro.store.base.open_store` and closed again
    afterwards).  Sources are processed in the given order, each checked
    against the *current* destination state, so conflicts between two
    sources surface just like conflicts with pre-existing destination
    cells.  Raises :class:`MergeConflictError` on the first divergent
    cell; the destination is flushed before the raise, so everything
    merged up to the conflicting source remains durable and inspectable.
    """
    tracer = current_tracer()
    report = MergeReport()
    dest_store, close_dest = _as_store(dest)
    try:
        with tracer.span("backend:merge", category="backend", sources=len(sources)):
            seen_runs = {manifest.run_id for manifest in dest_store.manifests()}
            pending_manifests: List[Tuple[str, str, Any]] = []
            for source in sources:
                source_store, close_source = _as_store(source)
                try:
                    _merge_cells(dest_store, source_store, report)
                    for manifest in source_store.manifests():
                        if manifest.run_id in seen_runs:
                            continue
                        seen_runs.add(manifest.run_id)
                        pending_manifests.append(
                            (manifest.created_at, manifest.run_id, manifest)
                        )
                finally:
                    if close_source:
                        source_store.close()
                report.sources += 1
            for _, _, manifest in sorted(pending_manifests, key=lambda m: (m[0], m[1])):
                dest_store.add_manifest(manifest)
                report.manifests_added += 1
            if flush:
                dest_store.flush()
    finally:
        if close_dest:
            dest_store.close()
    return report


def _merge_cells(
    dest: ExperimentStore, source: ExperimentStore, report: MergeReport
) -> None:
    """Copy one shard's cells into ``dest``, deduping and conflict-checking."""
    items = source.items()
    existing = dest.get_many([key for key, _ in items])
    to_add = []
    for key, record in items:
        held = existing.get(key)
        if held is None:
            to_add.append((key, record))
            continue
        if _deterministic_payload(held) == _deterministic_payload(record):
            report.deduped += 1
            continue
        dest.flush()  # keep everything merged so far durable for inspection
        raise MergeConflictError(
            f"merge conflict on cell {key.to_dict()}: destination and source "
            f"hold different deterministic payloads (instance "
            f"{record.instance!r}, allocator {key.allocator!r}, "
            f"R={key.num_registers}) — the shards were produced by "
            "incompatible code and cannot be fused",
            key=key,
        )
    if to_add:
        dest.put_many(to_add)
        report.added += len(to_add)


def _as_store(
    store_or_path: Union[str, ExperimentStore],
) -> Tuple[ExperimentStore, bool]:
    """Normalize a store-or-path argument; the bool says "close when done"."""
    if isinstance(store_or_path, ExperimentStore):
        return store_or_path, False
    return open_store(store_or_path), True
