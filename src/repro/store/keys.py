"""Content-addressed cache keys for experiment cells.

A *cell* is one allocator run on one problem at one register count.  Its key
is ``(problem_digest, allocator, allocator_version, num_registers)``:

* ``problem_digest`` — SHA-256 over the problem's canonical content: the
  sorted-adjacency graph digest (which covers the spill-cost weights), the
  register count, the live intervals (when present, they change what the
  linear-scan family computes) and the target name when known.  The instance
  *name* is deliberately excluded — renaming a corpus must not invalidate its
  cache.
* ``allocator`` — the allocator's canonical registry name (``"NL"``, not the
  ``"layered"`` alias).
* ``allocator_version`` — the :attr:`~repro.alloc.base.Allocator.version`
  tag; bumping it on an algorithm change invalidates only that allocator's
  cached cells.
* ``num_registers`` — the swept ``R``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.alloc.problem import AllocationProblem
from repro.graphs.io import graph_digest

PROBLEM_DIGEST_VERSION = 1


@dataclass(frozen=True, order=True)
class CellKey:
    """Identity of one cached experiment cell."""

    problem_digest: str
    allocator: str
    allocator_version: str
    num_registers: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem_digest": self.problem_digest,
            "allocator": self.allocator,
            "allocator_version": self.allocator_version,
            "num_registers": self.num_registers,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellKey":
        return cls(
            problem_digest=str(data["problem_digest"]),
            allocator=str(data["allocator"]),
            allocator_version=str(data["allocator_version"]),
            num_registers=int(data["num_registers"]),
        )


def _intervals_payload(problem: AllocationProblem) -> List[Tuple[str, int, int]]:
    """Canonical (sorted) form of the live intervals, if the problem has any."""
    if not problem.intervals:
        return []
    return sorted((str(i.register), i.start, i.end) for i in problem.intervals)


def problem_digest(
    problem: AllocationProblem,
    target: Optional[str] = None,
    registers: Optional[int] = None,
) -> str:
    """SHA-256 hex digest of the problem's canonical content.

    ``registers`` overrides ``problem.num_registers`` so a register-count
    sweep can key every ``R`` without materializing ``with_registers`` clones.
    The graph and interval digests are R-independent and memoized through
    :meth:`AllocationProblem.derived`, which is shared across clones, so a
    full sweep hashes the graph exactly once per instance.

    Problems carrying :class:`~repro.alloc.constraints.ProblemConstraints`
    additionally fold the canonical constraint payload into the content
    hash; unconstrained problems hash exactly as they always did, so every
    historical digest and store cell stays valid.
    """
    constraints = problem.constraints
    if constraints is None:
        # The historical content payload, bit for bit: unconstrained
        # problems must keep every existing digest, store cell and warm
        # cache byte-identical (pinned by tests/store/test_digest.py).
        content = problem.derived(
            "store:content_digest",
            lambda: hashlib.sha256(
                json.dumps(
                    {
                        "graph": graph_digest(problem.graph),
                        "intervals": _intervals_payload(problem),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
            ).hexdigest(),
        )
    else:
        # Constraints fold into the content hash only when present, under a
        # fingerprint-qualified derived key so the cache shared across
        # `with_registers` clones can never serve a digest computed for a
        # different (or absent) constraint set.
        fingerprint = constraints.fingerprint()
        content = problem.derived(
            f"store:content_digest:{fingerprint}",
            lambda: hashlib.sha256(
                json.dumps(
                    {
                        "graph": graph_digest(problem.graph),
                        "intervals": _intervals_payload(problem),
                        "constraints": constraints.to_payload(),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
            ).hexdigest(),
        )
    payload = {
        "format": "repro-problem",
        "version": PROBLEM_DIGEST_VERSION,
        "content": content,
        "registers": problem.num_registers if registers is None else int(registers),
        "target": target,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
