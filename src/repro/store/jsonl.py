"""Append-only JSONL backend of the experiment store.

One line per event, each a JSON object tagged ``"type": "cell"`` or
``"type": "manifest"``.  Cells are indexed in memory on open with
last-write-wins semantics, matching the SQLite backend's
``INSERT OR REPLACE``.

The format is crash-tolerant by construction: a sweep killed mid-write leaves
at most one truncated final line, which :meth:`_load` skips (any malformed
*interior* line is an error — that is corruption, not an interrupted append).
The file is human-greppable and trivially mergeable across hosts with ``cat``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.store.base import (
    ExperimentStore,
    RunManifest,
    _items_sort_key,
    record_from_dict,
    record_to_dict,
    utc_now_iso,
)
from repro.store.keys import CellKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import InstanceRecord


class StoreFormatError(ReproError):
    """The JSONL store file is corrupted beyond an interrupted final append."""


class JsonlExperimentStore(ExperimentStore):
    """Experiment store persisted as one append-only JSON-lines file."""

    backend = "jsonl"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._cells: Dict[CellKey, "InstanceRecord"] = {}
        self._manifests: List[RunManifest] = []
        repair = self._load()
        if repair == "terminate":
            # Valid final line that lost its newline: complete it in place.
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write("\n")
        elif repair == "truncate":
            # Garbage partial final line from an interrupted append: cut it
            # off so it cannot masquerade as interior corruption later.
            self._truncate_partial_tail()
        self._handle = self.path.open("a", encoding="utf-8")

    def _load(self) -> str:
        """Replay the log into the in-memory index.

        Returns the repair needed for the file's final line: ``"none"``,
        ``"terminate"`` (valid line missing its newline) or ``"truncate"``
        (unparseable partial line left by an interrupted append).
        """
        if not self.path.exists():
            return "none"
        text = self.path.read_text(encoding="utf-8")
        if not text:
            return "none"
        terminated = text.endswith("\n")
        lines = text.split("\n")[:-1] if terminated else text.split("\n")
        tail_number = len(lines)
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            is_tail = not terminated and number == tail_number
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                if is_tail:
                    return "truncate"  # interrupted append; drop it
                raise StoreFormatError(
                    f"{self.path}:{number}: malformed store line: {error}"
                ) from None
            self._apply(event, number)
            if is_tail:
                return "terminate"
        return "none"

    def _truncate_partial_tail(self) -> None:
        """Cut the unterminated final line off the file."""
        data = self.path.read_bytes()
        keep = data.rfind(b"\n") + 1  # 0 when the file is one partial line
        with self.path.open("rb+") as handle:
            handle.truncate(keep)

    def _apply(self, event: Dict, number: int) -> None:
        kind = event.get("type")
        if kind == "cell":
            self._cells[CellKey.from_dict(event["key"])] = record_from_dict(event["record"])
        elif kind == "manifest":
            self._manifests.append(RunManifest.from_dict(event["manifest"]))
        else:
            raise StoreFormatError(f"{self.path}:{number}: unknown event type {kind!r}")

    def _append(self, event: Dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    # -- cells --------------------------------------------------------- #
    def _get_many(self, keys: List[CellKey]) -> Dict[CellKey, "InstanceRecord"]:
        return {key: self._cells[key] for key in keys if key in self._cells}

    def _put_many(self, items: List[Tuple[CellKey, "InstanceRecord"]]) -> None:
        stamp = utc_now_iso()
        wrote = False
        for key, record in items:
            self._append(
                {
                    "type": "cell",
                    "key": key.to_dict(),
                    "record": record_to_dict(record),
                    "created_at": stamp,
                }
            )
            self._cells[key] = record
            wrote = True
        if wrote:
            self._handle.flush()

    def items(self) -> List[Tuple[CellKey, "InstanceRecord"]]:
        return sorted(self._cells.items(), key=_items_sort_key)

    def __len__(self) -> int:
        return len(self._cells)

    # -- manifests ----------------------------------------------------- #
    def add_manifest(self, manifest: RunManifest) -> None:
        self._append({"type": "manifest", "manifest": manifest.to_dict()})
        self._handle.flush()
        self._manifests.append(manifest)

    def manifests(self) -> List[RunManifest]:
        return list(self._manifests)

    # -- lifecycle ----------------------------------------------------- #
    def _flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.flush()
        self._handle.close()
