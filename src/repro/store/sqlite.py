"""SQLite backend of the experiment store (the default).

One file, two tables:

* ``cells`` — primary key = the four cache-key columns, payload = the
  serialized :class:`~repro.experiments.runner.InstanceRecord` as JSON.
  ``INSERT OR REPLACE`` gives last-write-wins semantics, matching the JSONL
  backend.
* ``manifests`` — append-only provenance log, one row per sweep.

Every :meth:`put_many`/:meth:`add_manifest` commits, so cells written by an
interrupted sweep survive the crash (WAL journaling keeps the commits cheap).
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from repro.store.base import (
    ExperimentStore,
    RunManifest,
    _items_sort_key,
    record_from_dict,
    record_to_dict,
    utc_now_iso,
)
from repro.store.keys import CellKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import InstanceRecord

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    problem_digest    TEXT    NOT NULL,
    allocator         TEXT    NOT NULL,
    allocator_version TEXT    NOT NULL,
    num_registers     INTEGER NOT NULL,
    record            TEXT    NOT NULL,
    created_at        TEXT    NOT NULL,
    PRIMARY KEY (problem_digest, allocator, allocator_version, num_registers)
);
CREATE TABLE IF NOT EXISTS manifests (
    rowid_order INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      TEXT NOT NULL,
    created_at  TEXT NOT NULL,
    manifest    TEXT NOT NULL
);
"""


class SqliteExperimentStore(ExperimentStore):
    """Experiment store persisted in a single SQLite database file."""

    backend = "sqlite"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- cells --------------------------------------------------------- #
    def _get_many(self, keys: List[CellKey]) -> Dict[CellKey, "InstanceRecord"]:
        found: Dict[CellKey, "InstanceRecord"] = {}
        cursor = self._conn.cursor()
        for key in keys:
            row = cursor.execute(
                "SELECT record FROM cells WHERE problem_digest=? AND allocator=?"
                " AND allocator_version=? AND num_registers=?",
                (key.problem_digest, key.allocator, key.allocator_version, key.num_registers),
            ).fetchone()
            if row is not None:
                found[key] = record_from_dict(json.loads(row[0]))
        return found

    def _put_many(self, items: List[Tuple[CellKey, "InstanceRecord"]]) -> None:
        stamp = utc_now_iso()
        rows = [
            (
                key.problem_digest,
                key.allocator,
                key.allocator_version,
                key.num_registers,
                json.dumps(record_to_dict(record), sort_keys=True),
                stamp,
            )
            for key, record in items
        ]
        if not rows:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO cells"
            " (problem_digest, allocator, allocator_version, num_registers, record, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    def items(self) -> List[Tuple[CellKey, "InstanceRecord"]]:
        rows = self._conn.execute(
            "SELECT problem_digest, allocator, allocator_version, num_registers, record FROM cells"
        ).fetchall()
        pairs = [
            (CellKey(digest, allocator, version, registers), record_from_dict(json.loads(blob)))
            for digest, allocator, version, registers, blob in rows
        ]
        pairs.sort(key=_items_sort_key)
        return pairs

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0])

    # -- manifests ----------------------------------------------------- #
    def add_manifest(self, manifest: RunManifest) -> None:
        self._conn.execute(
            "INSERT INTO manifests (run_id, created_at, manifest) VALUES (?, ?, ?)",
            (manifest.run_id, manifest.created_at, json.dumps(manifest.to_dict(), sort_keys=True)),
        )
        self._conn.commit()

    def manifests(self) -> List[RunManifest]:
        rows = self._conn.execute(
            "SELECT manifest FROM manifests ORDER BY rowid_order"
        ).fetchall()
        return [RunManifest.from_dict(json.loads(blob)) for (blob,) in rows]

    # -- lifecycle ----------------------------------------------------- #
    def _flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()
