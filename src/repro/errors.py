"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the allocator in a larger compiler can catch a single base
class.  Sub-classes are grouped by subsystem (IR, graph, allocation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed or inconsistent intermediate representation."""


class ParseError(IRError):
    """The textual IR could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class VerificationError(IRError):
    """The IR verifier found a structural violation (e.g. use before def)."""


class PhiEdgeError(IRError):
    """A φ-function names an incoming label that is not an actual CFG
    predecessor of its block (a stale edge left behind by CFG surgery).

    Raised by the liveness analyses instead of silently recording (or
    silently dropping) the φ operand, which would corrupt live sets and
    spill costs downstream."""


class GraphError(ReproError):
    """Invalid operation on a graph (unknown vertex, duplicate edge, ...)."""


class NotChordalError(GraphError):
    """An algorithm requiring a chordal graph was given a non-chordal one."""


class PipelineError(ReproError):
    """Invalid pipeline specification or stage wiring (unknown stage,
    missing stage input, malformed config)."""


class AllocationError(ReproError):
    """A register allocation request could not be satisfied."""


class InvalidAllocationError(AllocationError):
    """An allocation result violates the register constraint."""


class SolverUnavailableError(AllocationError):
    """The optional ILP solver backend (scipy) is not installed."""


class SearchBudgetError(AllocationError):
    """An exact solver exceeded its search budget on a too-hard instance.

    A documented capacity limit, not a wrong answer: callers (and the
    correctness oracle) treat it as "this backend cannot decide the
    instance", distinct from a genuine allocation bug."""


class OracleError(ReproError):
    """The differential correctness oracle observed a semantic difference
    between a program and its spill-rewritten form (a miscompile)."""
