"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the allocator in a larger compiler can catch a single base
class.  Sub-classes are grouped by subsystem (IR, graph, allocation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed or inconsistent intermediate representation."""


class ParseError(IRError):
    """The textual IR could not be parsed.

    Carries the full source location of the failure: the 1-based ``line``,
    and — when the parser has entered a function or block by the time the
    error surfaces — the enclosing ``function`` name and ``block`` label.
    ``raw_message`` keeps the location-free description so tools rendering
    their own locations (e.g. the ``check`` CLI's ``PARSE001`` diagnostics)
    need not re-parse the formatted message.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        function: str | None = None,
        block: str | None = None,
    ) -> None:
        self.raw_message = message
        self.line = line
        self.function = function
        self.block = block
        where = []
        if function is not None:
            where.append(f"function {function!r}")
        if block is not None:
            where.append(f"block {block!r}")
        if line is not None:
            prefix = f"line {line}"
            if where:
                prefix += " (" + ", ".join(where) + ")"
            message = f"{prefix}: {message}"
        elif where:
            message = f"{', '.join(where)}: {message}"
        super().__init__(message)


class VerificationError(IRError):
    """The IR verifier found a structural violation (e.g. use before def)."""


class PhiEdgeError(IRError):
    """A φ-function names an incoming label that is not an actual CFG
    predecessor of its block (a stale edge left behind by CFG surgery).

    Raised by the liveness analyses instead of silently recording (or
    silently dropping) the φ operand, which would corrupt live sets and
    spill costs downstream."""


class GraphError(ReproError):
    """Invalid operation on a graph (unknown vertex, duplicate edge, ...)."""


class NotChordalError(GraphError):
    """An algorithm requiring a chordal graph was given a non-chordal one."""


class PipelineError(ReproError):
    """Invalid pipeline specification or stage wiring (unknown stage,
    missing stage input, malformed config)."""


class AllocationError(ReproError):
    """A register allocation request could not be satisfied."""


class InvalidAllocationError(AllocationError):
    """An allocation result violates the register constraint."""


class SolverUnavailableError(AllocationError):
    """The optional ILP solver backend (scipy) is not installed."""


class SearchBudgetError(AllocationError):
    """An exact solver exceeded its search budget on a too-hard instance.

    A documented capacity limit, not a wrong answer: callers (and the
    correctness oracle) treat it as "this backend cannot decide the
    instance", distinct from a genuine allocation bug."""


class OracleError(ReproError):
    """The differential correctness oracle observed a semantic difference
    between a program and its spill-rewritten form (a miscompile)."""


class TelemetryError(ReproError):
    """A trace or bench-history artifact is malformed (unknown format tag,
    corrupt JSONL record, non-numeric metric) and cannot be loaded."""


class ServiceError(ReproError):
    """An allocation-service request is invalid or a service operation
    failed (malformed submission, unreachable server, unsupported store
    backend).  The HTTP front end renders these as 4xx responses; the CLI
    as clean exit-1 messages."""


class MergeConflictError(ReproError):
    """Two stores being merged disagree about the same cache cell.

    Raised by :func:`repro.store.merge.merge_batches` when a source shard
    carries a cell key the destination already holds with a *different*
    deterministic payload.  Identical payloads dedupe silently; a genuine
    divergence means the shards were produced by incompatible code (or a
    store was corrupted), and fusing them would silently poison every
    aggregate built on top — so the merge refuses.  ``key`` carries the
    conflicting :class:`~repro.store.keys.CellKey`.
    """

    def __init__(self, message: str, *, key: object = None) -> None:
        super().__init__(message)
        self.key = key


class QueueError(ServiceError):
    """An invalid job-queue transition (completing a job that is not
    running, failing an unknown job id, ...).  Indicates a worker raced a
    state change it did not own — the queue refuses rather than corrupting
    the job's lifecycle."""
