"""Normalization and distribution statistics for experiment records.

Every figure of the paper reports allocation costs *normalized to the optimal
allocation* of the same instance.  Instances where the optimum is zero (no
spilling required, or required only by the heuristic) need care:

* optimum 0 and heuristic 0 → ratio 1 (both perfect);
* optimum 0 and heuristic > 0 → the ratio is unbounded; such records are
  counted separately (``unbounded``) and excluded from the means, mirroring
  how per-method geometric means are usually reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.experiments.runner import InstanceRecord


@dataclass(frozen=True)
class NormalizedRecord:
    """One allocator/instance/register-count record normalized to optimal."""

    instance: str
    program: str
    allocator: str
    num_registers: int
    spill_cost: float
    optimal_cost: float
    ratio: float


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of a distribution of normalized costs (one box of Figs 11-13)."""

    count: int
    mean: float
    geomean: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 for an empty sequence)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already sorted sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def normalize_records(
    records: Iterable[InstanceRecord], optimal_name: str = "Optimal"
) -> Tuple[List[NormalizedRecord], int]:
    """Normalize every record against the optimal record of its instance.

    Returns the normalized records and the number of *unbounded* records
    (heuristic spilled although the optimum did not), which are excluded.
    """
    records = list(records)
    optimal_cost: Dict[Tuple[str, int], float] = {}
    for record in records:
        if record.allocator.lower() == optimal_name.lower():
            optimal_cost[(record.instance, record.num_registers)] = record.spill_cost

    normalized: List[NormalizedRecord] = []
    unbounded = 0
    for record in records:
        key = (record.instance, record.num_registers)
        if key not in optimal_cost:
            continue
        optimum = optimal_cost[key]
        if optimum > 0:
            ratio = record.spill_cost / optimum
        elif record.spill_cost == 0:
            ratio = 1.0
        else:
            unbounded += 1
            continue
        normalized.append(
            NormalizedRecord(
                instance=record.instance,
                program=record.program,
                allocator=record.allocator,
                num_registers=record.num_registers,
                spill_cost=record.spill_cost,
                optimal_cost=optimum,
                ratio=ratio,
            )
        )
    return normalized, unbounded


def mean_ratio_by(
    normalized: Iterable[NormalizedRecord],
    allocators: Sequence[str],
    register_counts: Sequence[int],
) -> Dict[str, Dict[int, float]]:
    """Mean normalized cost per allocator per register count (Figs 8-10, 14)."""
    buckets: Dict[Tuple[str, int], List[float]] = {}
    for record in normalized:
        buckets.setdefault((record.allocator, record.num_registers), []).append(record.ratio)
    table: Dict[str, Dict[int, float]] = {}
    for allocator in allocators:
        table[allocator] = {}
        for register_count in register_counts:
            values = buckets.get((allocator, register_count), [])
            table[allocator][register_count] = sum(values) / len(values) if values else float("nan")
    return table


def summarize_distribution(values: Sequence[float]) -> DistributionSummary:
    """Summarize a distribution of normalized costs."""
    ordered = sorted(values)
    if not ordered:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DistributionSummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        geomean=geometric_mean(ordered),
        minimum=ordered[0],
        p25=percentile(ordered, 0.25),
        median=percentile(ordered, 0.50),
        p75=percentile(ordered, 0.75),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )


def distribution_by(
    normalized: Iterable[NormalizedRecord],
    allocators: Sequence[str],
    register_counts: Sequence[int],
) -> Dict[str, Dict[int, DistributionSummary]]:
    """Distribution summaries per allocator per register count (Figs 11-13)."""
    buckets: Dict[Tuple[str, int], List[float]] = {}
    for record in normalized:
        buckets.setdefault((record.allocator, record.num_registers), []).append(record.ratio)
    table: Dict[str, Dict[int, DistributionSummary]] = {}
    for allocator in allocators:
        table[allocator] = {}
        for register_count in register_counts:
            table[allocator][register_count] = summarize_distribution(
                buckets.get((allocator, register_count), [])
            )
    return table


def per_program_means(
    normalized: Iterable[NormalizedRecord],
    allocators: Sequence[str],
    register_count: int,
) -> Dict[str, Dict[str, float]]:
    """Mean normalized cost per benchmark program at one register count (Fig 15)."""
    buckets: Dict[Tuple[str, str], List[float]] = {}
    programs: List[str] = []
    for record in normalized:
        if record.num_registers != register_count:
            continue
        if record.program not in programs:
            programs.append(record.program)
        buckets.setdefault((record.program, record.allocator), []).append(record.ratio)
    table: Dict[str, Dict[str, float]] = {}
    for program in programs:
        table[program] = {}
        for allocator in allocators:
            values = buckets.get((program, allocator), [])
            table[program][allocator] = sum(values) / len(values) if values else float("nan")
    return table
