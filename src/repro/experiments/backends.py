"""Execution backends: where a sweep's cells actually run.

:func:`~repro.experiments.runner.run_experiment` plans *what* to compute —
which ``(instance, register count, allocator)`` cells are missing from the
store — and delegates *how* to an :class:`ExecutionBackend`:

* :class:`LocalPoolBackend` — the historical in-process path: serial or a
  :class:`~concurrent.futures.ProcessPoolExecutor` shard pool.  Its records
  are byte-identical to what ``run_experiment`` produced before the seam
  existed (pinned by the backend-parity tests).
* :class:`ServiceBackend` — plans the missing cells into batched
  ``POST /v1/batches`` submissions against one or more running allocation
  services (round-robin across endpoints) and polls the results back into
  the sweep's store.  Batches are claimed as a unit per worker, submissions
  carry a client name for the queue's per-client fairness, and the
  service-side job-key dedupe means overlapping sweeps cost nothing.

The backend contract is intentionally narrow: ``run_plan(plan, config,
emit)`` receives the missing-cell plan and calls ``emit(index, pairs)`` as
results become available; the runner owns keying, caching, persistence and
manifests.  ``run_storeless(selected, config)`` serves the store-less
``run_experiment`` path and only the local backend supports it (a service
sweep without a store would have nowhere durable to put results).

Telemetry: the service backend wraps submissions in ``backend:submit``
spans and polls in ``backend:poll`` spans, and counts ``sweep.submitted``,
``sweep.completed`` and ``sweep.deduped`` cells.
"""

from __future__ import annotations

import abc
import dataclasses
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.alloc.problem import AllocationProblem
from repro.errors import ServiceError
from repro.graphs.io import graph_to_dict
from repro.store.base import record_from_dict
from repro.telemetry.tracer import TraceSnapshot, current_tracer

from repro.experiments import runner

#: one planned instance: (corpus index, problem, program, missing cells).
PlanItem = Tuple[int, AllocationProblem, str, List["runner.Cell"]]
#: result sink: ``emit(index, [(cell, record), ...])`` persists and records.
EmitFn = Callable[[int, List[Tuple["runner.Cell", "runner.InstanceRecord"]]], None]


class ExecutionBackend(abc.ABC):
    """Strategy for executing a sweep's missing cells (see module docs)."""

    #: backend identifier recorded in run manifests (``config["backend"]``).
    name = "abstract"

    def run_storeless(
        self,
        selected: List[Tuple[int, AllocationProblem, str]],
        config: "runner.ExperimentConfig",
    ) -> List["runner.InstanceRecord"]:
        """Run every cell of ``selected`` without a store (local only)."""
        raise ServiceError(
            f"the {self.name!r} execution backend requires a store: "
            "pass store=... to run_experiment so results have somewhere durable to land"
        )

    @abc.abstractmethod
    def run_plan(
        self,
        plan: List[PlanItem],
        config: "runner.ExperimentConfig",
        emit: EmitFn,
    ) -> None:
        """Execute the missing cells, calling ``emit`` as results arrive."""


class LocalPoolBackend(ExecutionBackend):
    """The in-process backend: serial, or a process-pool shard sweep.

    ``jobs=None`` (the default) follows ``config.jobs``; an explicit value
    overrides it.  Both paths produce records byte-identical to the
    pre-seam ``run_experiment`` — the code here *is* that code, moved.
    """

    name = "local"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"LocalPoolBackend jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def _jobs(self, config: "runner.ExperimentConfig") -> int:
        return config.jobs if self.jobs is None else self.jobs

    # -- store-less path ------------------------------------------------ #
    def run_storeless(
        self,
        selected: List[Tuple[int, AllocationProblem, str]],
        config: "runner.ExperimentConfig",
    ) -> List["runner.InstanceRecord"]:
        jobs = self._jobs(config)
        if jobs <= 1 or len(selected) <= 1:
            records: List["runner.InstanceRecord"] = []
            for _, problem, program in selected:
                records.extend(
                    runner.run_instance(
                        problem,
                        config.allocators,
                        config.register_counts,
                        program=program,
                        verify=config.verify,
                    )
                )
            return records

        workers = min(jobs, len(selected))
        shards: List[List[Tuple[int, AllocationProblem, str]]] = [[] for _ in range(workers)]
        for position, item in enumerate(selected):
            shards[position % workers].append(item)

        tracer = current_tracer()
        indexed: List[Tuple[int, List["runner.InstanceRecord"]]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    runner._run_instance_shard,
                    shard,
                    list(config.allocators),
                    list(config.register_counts),
                    config.verify,
                    tracer.enabled,
                )
                for shard in shards
            ]
            # Futures are iterated in submission (shard) order, so worker
            # telemetry merges deterministically for a given sharding.
            for shard_index, future in enumerate(futures):
                pairs, snapshot = future.result()
                indexed.extend(pairs)
                if snapshot is not None:
                    tracer.merge(snapshot, label=f"worker-{shard_index}")

        indexed.sort(key=lambda pair: pair[0])
        records = []
        for _, instance_records in indexed:
            records.extend(instance_records)
        return records

    # -- store-backed path ---------------------------------------------- #
    def run_plan(
        self,
        plan: List[PlanItem],
        config: "runner.ExperimentConfig",
        emit: EmitFn,
    ) -> None:
        jobs = self._jobs(config)
        if jobs <= 1 or len(plan) <= 1:
            for index, problem, program, missing in plan:

                def persist(
                    cell: "runner.Cell", record: "runner.InstanceRecord", _index: int = index
                ) -> None:
                    emit(_index, [(cell, record)])

                runner.run_cells(
                    problem,
                    missing,
                    program=program,
                    verify=config.verify,
                    on_record=persist,
                )
            return

        tracer = current_tracer()
        workers = min(jobs, len(plan))
        snapshots: Dict[int, TraceSnapshot] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    runner._run_cells_worker, problem, missing, program, config.verify, tracer.enabled
                ): (plan_position, index, missing)
                for plan_position, (index, problem, program, missing) in enumerate(plan)
            }
            for future in as_completed(futures):
                plan_position, index, missing = futures[future]
                results, snapshot = future.result()
                if snapshot is not None:
                    snapshots[plan_position] = snapshot
                emit(index, list(zip(missing, results)))
        # ``as_completed`` yields in finish order; merging sorted by plan
        # position keeps the combined trace deterministic regardless.
        for plan_position in sorted(snapshots):
            tracer.merge(snapshots[plan_position], label=f"instance-{plan_position}")


class ServiceBackend(ExecutionBackend):
    """Distribute a sweep's missing cells over running allocation services.

    Every missing cell becomes one graph submission (the problem's
    interference graph, intervals when present, register count and
    allocator); submissions are grouped into batches of ``batch_size`` and
    posted round-robin across ``endpoints`` as ``POST /v1/batches`` jobs —
    one queue job per batch, claimed as a unit by one service worker.  All
    batches are submitted before any is polled, so the whole fleet drains
    in parallel; results are rehydrated into :class:`InstanceRecord`\\ s and
    handed to the runner's ``emit`` for keying and persistence.

    ``runtime_seconds`` of service-computed records is ``0.0`` — the wall
    time was spent on another machine and is deliberately not passed off as
    a local measurement.  Everything the figures aggregate (spill cost,
    counts, allocator stats) is deterministic and travels unchanged.
    """

    name = "service"

    def __init__(
        self,
        endpoints: Sequence[str],
        *,
        batch_size: int = 32,
        client: str = "sweep",
        priority: int = 0,
        timeout: float = 600.0,
        client_factory: Optional[Callable[[str], object]] = None,
    ) -> None:
        urls = [
            url if "://" in url else f"http://{url}"
            for url in (candidate.strip().rstrip("/") for candidate in endpoints)
            if url
        ]
        if not urls:
            raise ServiceError("ServiceBackend needs at least one endpoint URL")
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        if client_factory is None:
            from repro.service.client import ServiceClient

            client_factory = ServiceClient
        self.endpoints = urls
        self.batch_size = int(batch_size)
        self.client = client
        self.priority = int(priority)
        self.timeout = float(timeout)
        self._clients = [client_factory(url) for url in urls]

    # ------------------------------------------------------------------ #
    def _submission(self, problem: AllocationProblem, cell: "runner.Cell") -> Dict:
        registers, allocator = cell
        if problem.constraints is not None:
            raise ServiceError(
                f"cannot distribute constrained problem {problem.name!r}: "
                "machine-model constraints have no wire format yet — use the local backend"
            )
        body: Dict = {
            "graph": graph_to_dict(problem.graph, name=problem.name),
            "registers": registers,
            "allocator": allocator,
            "name": problem.name,
        }
        if problem.intervals:
            body["intervals"] = [
                [str(interval.register), interval.start, interval.end]
                for interval in problem.intervals
            ]
        return body

    def run_plan(
        self,
        plan: List[PlanItem],
        config: "runner.ExperimentConfig",
        emit: EmitFn,
    ) -> None:
        tracer = current_tracer()
        entries: List[Tuple[int, "runner.Cell", AllocationProblem, str]] = [
            (index, cell, problem, program)
            for index, problem, program, missing in plan
            for cell in missing
        ]

        # Submit every batch before polling any: the fleet works in parallel
        # while this process waits.  Batch composition is deterministic for a
        # given plan, so a re-run submits identical job keys and dedupes.
        submitted = []
        for batch_index in range(0, len(entries), self.batch_size):
            batch = entries[batch_index : batch_index + self.batch_size]
            position = batch_index // self.batch_size
            client = self._clients[position % len(self._clients)]
            endpoint = self.endpoints[position % len(self.endpoints)]
            body = {
                "jobs": [self._submission(problem, cell) for _, cell, problem, _ in batch],
                "client": self.client,
                "priority": self.priority,
                "name": f"sweep-batch-{position:05d}",
            }
            if tracer.enabled:
                with tracer.span(
                    "backend:submit", category="backend", endpoint=endpoint, cells=len(batch)
                ):
                    response = client.submit_batch(body)
            else:
                response = client.submit_batch(body)
            if tracer.enabled:
                tracer.count("sweep.submitted", len(batch))
                if response.get("deduped"):
                    tracer.count("sweep.deduped", len(batch))
            submitted.append((client, endpoint, response["job"]["id"], batch))

        for client, endpoint, job_id, batch in submitted:
            if tracer.enabled:
                with tracer.span(
                    "backend:poll", category="backend", endpoint=endpoint, job=job_id
                ):
                    job = client.wait(job_id, timeout=self.timeout)
            else:
                job = client.wait(job_id, timeout=self.timeout)
            if job["state"] != "done":
                raise ServiceError(
                    f"service job {job_id} on {endpoint} ended {job['state']!r}: "
                    f"{job.get('error')}"
                )
            members = (job.get("result") or {}).get("jobs")
            if not isinstance(members, list) or len(members) != len(batch):
                raise ServiceError(
                    f"service job {job_id} on {endpoint} returned "
                    f"{len(members) if isinstance(members, list) else 'no'} member result(s), "
                    f"expected {len(batch)}"
                )
            by_index: Dict[int, List[Tuple["runner.Cell", "runner.InstanceRecord"]]] = {}
            for (index, cell, problem, program), member in zip(batch, members):
                payloads = member.get("records") or []
                if len(payloads) != 1:
                    raise ServiceError(
                        f"service result for {problem.name!r} carried "
                        f"{len(payloads)} record(s), expected exactly 1"
                    )
                # Rehydrate provenance exactly like a local cache hit: the
                # record must carry the names this sweep was asked with.
                record = dataclasses.replace(
                    record_from_dict(payloads[0]),
                    instance=problem.name,
                    program=program,
                    allocator=cell[1],
                )
                by_index.setdefault(index, []).append((cell, record))
            for index, pairs in by_index.items():
                emit(index, pairs)
            if tracer.enabled:
                tracer.count("sweep.completed", len(batch))
