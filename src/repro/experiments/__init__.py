"""Experiment harness reproducing the paper's evaluation (Figures 8–15).

The harness is organized in three layers:

* :mod:`repro.experiments.runner` — run a set of allocators over a corpus for
  a sweep of register counts, producing raw per-instance records;
* :mod:`repro.experiments.stats` — normalization against the optimal
  allocator, means and distribution summaries;
* :mod:`repro.experiments.figures` — one entry point per paper figure,
  returning structured data and rendering ASCII tables
  (:mod:`repro.experiments.report`).
"""

from repro.experiments.backends import (
    ExecutionBackend,
    LocalPoolBackend,
    ServiceBackend,
)
from repro.experiments.runner import (
    ExperimentConfig,
    InstanceRecord,
    run_experiment,
    run_streamed_experiment,
)
from repro.experiments.stats import (
    DistributionSummary,
    geometric_mean,
    normalize_records,
    summarize_distribution,
)
from repro.experiments.figures import (
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    inclusion_study,
    ablation_study,
    FigureResult,
)
from repro.experiments.report import render_table, render_figure

__all__ = [
    "ExecutionBackend",
    "ExperimentConfig",
    "InstanceRecord",
    "LocalPoolBackend",
    "ServiceBackend",
    "run_experiment",
    "run_streamed_experiment",
    "DistributionSummary",
    "geometric_mean",
    "normalize_records",
    "summarize_distribution",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "inclusion_study",
    "ablation_study",
    "FigureResult",
    "render_table",
    "render_figure",
]
