"""Run allocators over corpora of allocation problems.

Sweeps are embarrassingly parallel across instances: every (instance,
register count, allocator) cell is independent.  ``ExperimentConfig.jobs``
enables a process-pool sweep that shards the corpus round-robin over workers
while keeping the returned record list byte-for-byte identical to the serial
order (records are reassembled by instance index, and within one instance
the register-count × allocator nesting is preserved by :func:`run_instance`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.alloc import get_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.alloc.verify import check_allocation
from repro.workloads.corpus import Corpus


@dataclass
class ExperimentConfig:
    """Configuration of one experiment sweep."""

    #: allocator registry names to compare.
    allocators: Sequence[str]
    #: register counts to sweep.
    register_counts: Sequence[int]
    #: validate every allocation result (slower but catches allocator bugs).
    verify: bool = True
    #: drop instances whose register pressure never exceeds the *smallest*
    #: register count (such instances need no spilling at any swept count
    #: and only add noise).
    skip_trivial: bool = False
    #: worker processes for the sweep; ``1`` (default) runs serially in
    #: process.  Record ordering is identical regardless of ``jobs``.
    jobs: int = 1


@dataclass
class InstanceRecord:
    """Raw result of one allocator on one instance at one register count."""

    instance: str
    program: str
    allocator: str
    num_registers: int
    spill_cost: float
    num_spilled: int
    num_variables: int
    max_pressure: int
    runtime_seconds: float
    stats: Dict = field(default_factory=dict)


def run_instance(
    problem: AllocationProblem,
    allocator_names: Sequence[str],
    register_counts: Sequence[int],
    program: str = "",
    verify: bool = True,
) -> List[InstanceRecord]:
    """Run every allocator at every register count on one problem."""
    records: List[InstanceRecord] = []
    for register_count in register_counts:
        instance = problem.with_registers(register_count)
        for allocator_name in allocator_names:
            allocator = get_allocator(allocator_name)
            start = time.perf_counter()
            result: AllocationResult = allocator.allocate(instance)
            elapsed = time.perf_counter() - start
            if verify:
                check_allocation(instance, result, strict=False)
            records.append(
                InstanceRecord(
                    instance=problem.name,
                    program=program,
                    allocator=allocator_name,
                    num_registers=register_count,
                    spill_cost=result.spill_cost,
                    num_spilled=result.num_spilled,
                    num_variables=len(problem.graph),
                    max_pressure=problem.max_pressure,
                    runtime_seconds=elapsed,
                    stats=dict(result.stats),
                )
            )
    return records


def _run_instance_shard(
    shard: Sequence[Tuple[int, AllocationProblem, str]],
    allocator_names: Sequence[str],
    register_counts: Sequence[int],
    verify: bool,
) -> List[Tuple[int, List[InstanceRecord]]]:
    """Worker entry point: run one shard of (index, problem, program) triples.

    Module-level so it pickles for :class:`ProcessPoolExecutor`.  The
    original corpus index travels with each result so the parent can restore
    the serial record order deterministically.
    """
    out: List[Tuple[int, List[InstanceRecord]]] = []
    for index, problem, program in shard:
        out.append(
            (index, run_instance(problem, allocator_names, register_counts, program=program, verify=verify))
        )
    return out


def run_experiment(
    corpus: Corpus | Iterable[AllocationProblem],
    config: ExperimentConfig,
    max_instances: Optional[int] = None,
) -> List[InstanceRecord]:
    """Run the configured sweep over a corpus and return raw records.

    ``max_instances`` truncates the corpus, which the quick benchmarks use to
    bound their runtime; the full figures run the whole corpus.

    With ``config.jobs > 1`` the selected instances are sharded round-robin
    over a process pool; the returned records are re-ordered by instance
    index, so the output is identical to a serial run (modulo the measured
    ``runtime_seconds``).
    """
    if isinstance(corpus, Corpus):
        problems = list(corpus.problems)
        program_of = dict(corpus.program_of)
    else:
        problems = list(corpus)
        program_of = {index: problem.name for index, problem in enumerate(problems)}

    # Select the instances first so trivial-skipping and truncation behave
    # identically in the serial and parallel paths.
    pressure_floor: Optional[int] = None
    if config.skip_trivial and config.register_counts:
        pressure_floor = min(config.register_counts)
    selected: List[Tuple[int, AllocationProblem, str]] = []
    for index, problem in enumerate(problems):
        if max_instances is not None and len(selected) >= max_instances:
            break
        if pressure_floor is not None and problem.max_pressure <= pressure_floor:
            continue
        selected.append((index, problem, program_of.get(index, problem.name)))

    if config.jobs <= 1 or len(selected) <= 1:
        records: List[InstanceRecord] = []
        for _, problem, program in selected:
            records.extend(
                run_instance(
                    problem,
                    config.allocators,
                    config.register_counts,
                    program=program,
                    verify=config.verify,
                )
            )
        return records

    workers = min(config.jobs, len(selected))
    shards: List[List[Tuple[int, AllocationProblem, str]]] = [[] for _ in range(workers)]
    for position, item in enumerate(selected):
        shards[position % workers].append(item)

    indexed: List[Tuple[int, List[InstanceRecord]]] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_instance_shard,
                shard,
                list(config.allocators),
                list(config.register_counts),
                config.verify,
            )
            for shard in shards
        ]
        for future in futures:
            indexed.extend(future.result())

    indexed.sort(key=lambda pair: pair[0])
    records = []
    for _, instance_records in indexed:
        records.extend(instance_records)
    return records
