"""Run allocators over corpora of allocation problems."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.alloc import get_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.alloc.verify import check_allocation
from repro.workloads.corpus import Corpus


@dataclass
class ExperimentConfig:
    """Configuration of one experiment sweep."""

    #: allocator registry names to compare.
    allocators: Sequence[str]
    #: register counts to sweep.
    register_counts: Sequence[int]
    #: validate every allocation result (slower but catches allocator bugs).
    verify: bool = True
    #: drop instances whose register pressure never exceeds the largest
    #: register count (they need no spilling and only add noise).
    skip_trivial: bool = False


@dataclass
class InstanceRecord:
    """Raw result of one allocator on one instance at one register count."""

    instance: str
    program: str
    allocator: str
    num_registers: int
    spill_cost: float
    num_spilled: int
    num_variables: int
    max_pressure: int
    runtime_seconds: float
    stats: Dict = field(default_factory=dict)


def run_instance(
    problem: AllocationProblem,
    allocator_names: Sequence[str],
    register_counts: Sequence[int],
    program: str = "",
    verify: bool = True,
) -> List[InstanceRecord]:
    """Run every allocator at every register count on one problem."""
    records: List[InstanceRecord] = []
    for register_count in register_counts:
        instance = problem.with_registers(register_count)
        for allocator_name in allocator_names:
            allocator = get_allocator(allocator_name)
            start = time.perf_counter()
            result: AllocationResult = allocator.allocate(instance)
            elapsed = time.perf_counter() - start
            if verify:
                check_allocation(instance, result, strict=False)
            records.append(
                InstanceRecord(
                    instance=problem.name,
                    program=program,
                    allocator=allocator_name,
                    num_registers=register_count,
                    spill_cost=result.spill_cost,
                    num_spilled=result.num_spilled,
                    num_variables=len(problem.graph),
                    max_pressure=problem.max_pressure,
                    runtime_seconds=elapsed,
                    stats=dict(result.stats),
                )
            )
    return records


def run_experiment(
    corpus: Corpus | Iterable[AllocationProblem],
    config: ExperimentConfig,
    max_instances: Optional[int] = None,
) -> List[InstanceRecord]:
    """Run the configured sweep over a corpus and return raw records.

    ``max_instances`` truncates the corpus, which the quick benchmarks use to
    bound their runtime; the full figures run the whole corpus.
    """
    if isinstance(corpus, Corpus):
        problems = list(corpus.problems)
        program_of = dict(corpus.program_of)
    else:
        problems = list(corpus)
        program_of = {index: problem.name for index, problem in enumerate(problems)}

    records: List[InstanceRecord] = []
    count = 0
    for index, problem in enumerate(problems):
        if max_instances is not None and count >= max_instances:
            break
        if config.skip_trivial and problem.max_pressure <= min(config.register_counts):
            continue
        records.extend(
            run_instance(
                problem,
                config.allocators,
                config.register_counts,
                program=program_of.get(index, problem.name),
                verify=config.verify,
            )
        )
        count += 1
    return records
