"""Run allocators over corpora of allocation problems.

Sweeps are embarrassingly parallel across instances: every (instance,
register count, allocator) cell is independent.  ``ExperimentConfig.jobs``
enables a process-pool sweep that shards the corpus over workers while
keeping the returned record list byte-for-byte identical to the serial order
(records are reassembled by instance index, and within one instance the
register-count × allocator nesting is preserved).

Passing an :class:`~repro.store.ExperimentStore` to :func:`run_experiment`
makes the sweep *cache-aware and resumable*: cells already present in the
store (content-addressed by ``(problem_digest, allocator, allocator_version,
R)``) are served without invoking the allocator, only the misses are computed
— sharded over the process pool when ``jobs > 1`` — and completed cells are
flushed to the store incrementally, so an interrupted sweep restarts where it
died.  Every store-backed sweep also appends a :class:`~repro.store.RunManifest`
recording provenance (corpus, seed, scale, config, git revision, wall time)
and the cache hit/miss split.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.alloc import get_allocator
from repro.alloc.base import Allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.pipeline.passes import run_allocator
from repro.store.base import ExperimentStore, RunManifest, current_git_rev, utc_now_iso
from repro.store.keys import CellKey, problem_digest
from repro.telemetry.tracer import Tracer, TraceSnapshot, current_tracer, use_tracer
from repro.workloads.corpus import Corpus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends imports us)
    from repro.experiments.backends import ExecutionBackend

#: one sweep cell within an instance: (register count, allocator name).
Cell = Tuple[int, str]


@dataclass
class ExperimentConfig:
    """Configuration of one experiment sweep."""

    #: allocator registry names to compare.
    allocators: Sequence[str]
    #: register counts to sweep.
    register_counts: Sequence[int]
    #: validate every allocation result (slower but catches allocator bugs).
    verify: bool = True
    #: drop instances whose register pressure never exceeds the *smallest*
    #: register count (such instances need no spilling at any swept count
    #: and only add noise).
    skip_trivial: bool = False
    #: worker processes for the sweep; ``1`` (default) runs serially in
    #: process.  Record ordering is identical regardless of ``jobs``.
    jobs: int = 1

    def validate(self) -> None:
        """Reject configurations that could only produce nonsense sweeps."""
        if not self.allocators:
            raise ValueError("ExperimentConfig.allocators must not be empty")
        if self.jobs < 1:
            raise ValueError(f"ExperimentConfig.jobs must be >= 1, got {self.jobs}")
        bad = [r for r in self.register_counts if r < 1]
        if bad:
            raise ValueError(
                f"ExperimentConfig.register_counts must be positive, got {bad}"
            )


@dataclass
class InstanceRecord:
    """Raw result of one allocator on one instance at one register count.

    ``spilled`` carries the sorted spill-set variable names; it is what lets
    the pipeline engine rebuild a full :class:`AllocationResult` from a
    cached cell without re-running the allocator.  Records written before
    the field existed deserialize with ``spilled=None`` — still valid for
    aggregation (cost/count suffice), but a cache *miss* for the engine.
    """

    instance: str
    program: str
    allocator: str
    num_registers: int
    spill_cost: float
    num_spilled: int
    num_variables: int
    max_pressure: int
    runtime_seconds: float
    stats: Dict = field(default_factory=dict)
    spilled: Optional[List[str]] = None

    @classmethod
    def from_result(
        cls,
        problem: AllocationProblem,
        result: AllocationResult,
        *,
        instance: str,
        program: str,
        allocator: str,
        elapsed: float,
    ) -> "InstanceRecord":
        """Package one allocate-stage output (the runner's and the engine's)."""
        return cls(
            instance=instance,
            program=program,
            allocator=allocator,
            num_registers=problem.num_registers,
            spill_cost=result.spill_cost,
            num_spilled=result.num_spilled,
            num_variables=len(problem.graph),
            max_pressure=problem.max_pressure,
            runtime_seconds=elapsed,
            stats=dict(result.stats),
            spilled=sorted(str(v) for v in result.spilled),
        )


def run_cells(
    problem: AllocationProblem,
    cells: Sequence[Cell],
    program: str = "",
    verify: bool = True,
    on_record: Optional[Callable[[Cell, InstanceRecord], None]] = None,
) -> List[InstanceRecord]:
    """Run the listed ``(register_count, allocator_name)`` cells on one problem.

    Allocators are instantiated once per name (not once per register count)
    and reused across the instance's cells.  Each cell executes through the
    pipeline's allocate kernel
    (:func:`repro.pipeline.passes.run_allocator`), so the runner and the
    :class:`~repro.pipeline.engine.Pipeline` engine produce interchangeable
    results and store cells.  ``on_record`` is invoked after each cell
    completes, which the store-backed serial sweep uses to flush
    cell-by-cell.
    """
    records: List[InstanceRecord] = []
    allocators: Dict[str, Allocator] = {}
    tracer = current_tracer()
    for register_count, allocator_name in cells:
        allocator = allocators.get(allocator_name)
        if allocator is None:
            allocator = allocators[allocator_name] = get_allocator(allocator_name)
        instance = problem.with_registers(register_count)
        if tracer.enabled:
            with tracer.span(
                "sweep:cell",
                category="sweep",
                instance=problem.name,
                allocator=allocator_name,
                registers=register_count,
            ):
                result, elapsed = run_allocator(instance, allocator, verify=verify)
        else:
            result, elapsed = run_allocator(instance, allocator, verify=verify)
        record = InstanceRecord.from_result(
            instance,
            result,
            instance=problem.name,
            program=program,
            allocator=allocator_name,
            elapsed=elapsed,
        )
        records.append(record)
        if on_record is not None:
            on_record((register_count, allocator_name), record)
    return records


def run_instance(
    problem: AllocationProblem,
    allocator_names: Sequence[str],
    register_counts: Sequence[int],
    program: str = "",
    verify: bool = True,
) -> List[InstanceRecord]:
    """Run every allocator at every register count on one problem."""
    cells = [(r, name) for r in register_counts for name in allocator_names]
    return run_cells(problem, cells, program=program, verify=verify)


def _run_instance_shard(
    shard: Sequence[Tuple[int, AllocationProblem, str]],
    allocator_names: Sequence[str],
    register_counts: Sequence[int],
    verify: bool,
    traced: bool = False,
) -> Tuple[List[Tuple[int, List[InstanceRecord]]], Optional[TraceSnapshot]]:
    """Worker entry point: run one shard of (index, problem, program) triples.

    Module-level so it pickles for :class:`ProcessPoolExecutor`.  The
    original corpus index travels with each result so the parent can restore
    the serial record order deterministically.  When the parent is tracing
    (``traced``), the worker collects spans/counters into its own tracer and
    ships the snapshot back for the parent to merge in shard order.
    """
    tracer = Tracer() if traced else None
    out: List[Tuple[int, List[InstanceRecord]]] = []
    with use_tracer(tracer) if tracer is not None else nullcontext():
        for index, problem, program in shard:
            out.append(
                (index, run_instance(problem, allocator_names, register_counts, program=program, verify=verify))
            )
    return out, (tracer.snapshot() if tracer is not None else None)


def _run_cells_worker(
    problem: AllocationProblem,
    cells: Sequence[Cell],
    program: str,
    verify: bool,
    traced: bool = False,
) -> Tuple[List[InstanceRecord], Optional[TraceSnapshot]]:
    """Worker entry point of the store-backed parallel sweep (one instance)."""
    if not traced:
        return run_cells(problem, cells, program=program, verify=verify), None
    tracer = Tracer()
    with use_tracer(tracer):
        records = run_cells(problem, cells, program=program, verify=verify)
    return records, tracer.snapshot()


def _select_instances(
    corpus: Corpus | Iterable[AllocationProblem],
    config: ExperimentConfig,
    max_instances: Optional[int],
) -> List[Tuple[int, AllocationProblem, str]]:
    """Apply trivial-skipping and truncation, identically for every path."""
    if isinstance(corpus, Corpus):
        problems = list(corpus.problems)
        program_of = dict(corpus.program_of)
    else:
        problems = list(corpus)
        program_of = {index: problem.name for index, problem in enumerate(problems)}

    pressure_floor: Optional[int] = None
    if config.skip_trivial and config.register_counts:
        pressure_floor = min(config.register_counts)
    selected: List[Tuple[int, AllocationProblem, str]] = []
    for index, problem in enumerate(problems):
        if max_instances is not None and len(selected) >= max_instances:
            break
        if pressure_floor is not None and problem.max_pressure <= pressure_floor:
            continue
        selected.append((index, problem, program_of.get(index, problem.name)))
    return selected


def _resolve_backend(backend: Optional["ExecutionBackend"]) -> "ExecutionBackend":
    """Default to the local pool (which follows ``config.jobs``)."""
    if backend is not None:
        return backend
    from repro.experiments.backends import LocalPoolBackend

    return LocalPoolBackend()


def run_experiment(
    corpus: Corpus | Iterable[AllocationProblem],
    config: ExperimentConfig,
    max_instances: Optional[int] = None,
    store: Optional[ExperimentStore] = None,
    resume: bool = True,
    backend: Optional["ExecutionBackend"] = None,
) -> List[InstanceRecord]:
    """Run the configured sweep over a corpus and return raw records.

    ``max_instances`` truncates the corpus, which the quick benchmarks use to
    bound their runtime; the full figures run the whole corpus.

    ``backend`` selects *where* missing cells execute (see
    :mod:`repro.experiments.backends`): the default
    :class:`~repro.experiments.backends.LocalPoolBackend` runs in process
    (serial, or a process pool with ``config.jobs > 1`` — records re-ordered
    by instance index, so the output is identical to a serial run modulo the
    measured ``runtime_seconds``); a
    :class:`~repro.experiments.backends.ServiceBackend` distributes them as
    batched jobs over running allocation services (store required).

    With a ``store``, cells already cached are served without running the
    allocator (their records are rehydrated with the current instance and
    program names, so renamed corpora still hit) and only the misses are
    computed and persisted — incrementally, so an interrupted sweep resumes
    from the last flushed cell.  ``resume=False`` recomputes every cell but
    still persists the results.  Cached cells are not re-verified; they were
    verified when first computed.
    """
    config.validate()
    backend = _resolve_backend(backend)
    selected = _select_instances(corpus, config, max_instances)

    if store is not None:
        return _run_with_store(corpus, config, selected, store, resume, backend)
    return backend.run_storeless(selected, config)


# ---------------------------------------------------------------------- #
# store-backed sweep
# ---------------------------------------------------------------------- #
def _plan_and_execute(
    selected: List[Tuple[int, AllocationProblem, str]],
    config: ExperimentConfig,
    store: ExperimentStore,
    resume: bool,
    backend: "ExecutionBackend",
    target: Optional[str],
) -> Tuple[Dict[Tuple[int, Cell], InstanceRecord], List[Cell], int, Dict[str, Dict[str, int]]]:
    """Key, plan and execute one window of instances against the store.

    Returns ``(cell_records, full_cells, cells_cached, cache_by_allocator)``
    — everything :func:`_run_with_store` and
    :func:`run_streamed_experiment` need to assemble records and manifests.
    """
    full_cells: List[Cell] = [
        (r, name) for r in config.register_counts for name in config.allocators
    ]

    # Canonicalize allocator names/versions once; aliases ("layered") key the
    # same cells as their paper name ("NL").
    canonical = {name: get_allocator(name) for name in config.allocators}
    key_of: Dict[Tuple[int, Cell], CellKey] = {}
    for index, problem, _program in selected:
        digests = {
            r: problem_digest(problem, target=target, registers=r)
            for r in config.register_counts
        }
        for r, name in full_cells:
            allocator = canonical[name]
            key_of[(index, (r, name))] = CellKey(
                problem_digest=digests[r],
                allocator=allocator.name,
                allocator_version=allocator.version,
                num_registers=r,
            )

    cached = store.get_many(key_of.values()) if resume else {}

    cell_records: Dict[Tuple[int, Cell], InstanceRecord] = {}
    plan: List[Tuple[int, AllocationProblem, str, List[Cell]]] = []
    for index, problem, program in selected:
        missing: List[Cell] = []
        for cell in full_cells:
            record = cached.get(key_of[(index, cell)])
            if record is None:
                missing.append(cell)
            else:
                # Rehydrate provenance: content-addressing means a renamed
                # corpus (or an allocator alias) still hits, but the record
                # must carry the names this sweep was asked with.
                cell_records[(index, cell)] = dataclasses.replace(
                    record, instance=problem.name, program=program, allocator=cell[1]
                )
        if missing:
            plan.append((index, problem, program, missing))

    cells_total = len(selected) * len(full_cells)
    cells_cached = len(cell_records)

    # Per-allocator hit/miss split (keyed by canonical name, so aliases fold
    # into their paper name) — recorded in the manifest and in the trace.
    cache_by_allocator: Dict[str, Dict[str, int]] = {}
    for (index, cell), key in key_of.items():
        split = cache_by_allocator.setdefault(canonical[cell[1]].name, {"hit": 0, "miss": 0})
        split["hit" if key in cached else "miss"] += 1

    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("store.hit", cells_cached)
        tracer.count("store.miss", cells_total - cells_cached)

    def canonicalized(cell: Cell, record: InstanceRecord) -> InstanceRecord:
        """The persisted copy carries the canonical allocator name, so a
        sweep via an alias ("layered") fills the same cells downstream
        consumers (aggregate/report) look up under the paper name ("NL")."""
        name = canonical[cell[1]].name
        return record if record.allocator == name else dataclasses.replace(record, allocator=name)

    def emit(index: int, pairs: List[Tuple[Cell, InstanceRecord]]) -> None:
        """Result sink handed to the backend: persist, then record."""
        store.put_many(
            [(key_of[(index, cell)], canonicalized(cell, record)) for cell, record in pairs]
        )
        for cell, record in pairs:
            cell_records[(index, cell)] = record

    if plan:
        backend.run_plan(plan, config, emit)
    store.flush()
    return cell_records, full_cells, cells_cached, cache_by_allocator


def _run_with_store(
    corpus: Corpus | Iterable[AllocationProblem],
    config: ExperimentConfig,
    selected: List[Tuple[int, AllocationProblem, str]],
    store: ExperimentStore,
    resume: bool,
    backend: "ExecutionBackend",
) -> List[InstanceRecord]:
    """Cache-aware sweep: serve hits from ``store``, compute and persist misses."""
    started = time.perf_counter()
    target = corpus.target if isinstance(corpus, Corpus) else None
    cell_records, full_cells, cells_cached, cache_by_allocator = _plan_and_execute(
        selected, config, store, resume, backend, target
    )
    cells_total = len(selected) * len(full_cells)

    records: List[InstanceRecord] = []
    for index, _problem, _program in selected:
        for cell in full_cells:
            records.append(cell_records[(index, cell)])

    if isinstance(corpus, Corpus):
        suite, corpus_target, seed, scale = corpus.suite, corpus.target, corpus.seed, corpus.scale
    else:
        suite = corpus_target = seed = scale = None
    store.add_manifest(
        RunManifest(
            run_id=uuid.uuid4().hex[:12],
            created_at=utc_now_iso(),
            suite=suite,
            target=corpus_target,
            seed=seed,
            scale=scale,
            config={
                "allocators": list(config.allocators),
                "register_counts": list(config.register_counts),
                "verify": config.verify,
                "skip_trivial": config.skip_trivial,
                "jobs": config.jobs,
                "resume": resume,
                "backend": backend.name,
            },
            git_rev=current_git_rev(),
            instances=len(selected),
            cells_total=cells_total,
            cells_computed=cells_total - cells_cached,
            cells_cached=cells_cached,
            wall_time_seconds=time.perf_counter() - started,
            cache_by_allocator=cache_by_allocator,
        )
    )
    store.flush()
    return records


def run_streamed_experiment(
    problems: Iterable[AllocationProblem],
    config: ExperimentConfig,
    store: ExperimentStore,
    *,
    backend: Optional["ExecutionBackend"] = None,
    window: int = 256,
    resume: bool = True,
    max_instances: Optional[int] = None,
    suite: Optional[str] = None,
    target: Optional[str] = None,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
) -> RunManifest:
    """Sweep a streamed corpus at constant memory; returns the run manifest.

    Unlike :func:`run_experiment`, the problem iterable is **never
    materialized**: instances are pulled ``window`` at a time, keyed,
    planned and executed against the store, then dropped — so a 100k+
    function :class:`~repro.workloads.corpus.CorpusStream` sweeps in a
    bounded footprint.  Records are not returned (they would themselves be
    O(cells)); the store holds them for ``aggregate``/``report``.  One
    manifest covers the whole stream, with the provenance fields passed in
    (a bare iterable carries none of its own).
    """
    config.validate()
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    backend = _resolve_backend(backend)
    started = time.perf_counter()

    pressure_floor: Optional[int] = None
    if config.skip_trivial and config.register_counts:
        pressure_floor = min(config.register_counts)

    cells_per_instance = len(config.register_counts) * len(config.allocators)
    instances = 0
    cells_cached = 0
    cache_by_allocator: Dict[str, Dict[str, int]] = {}

    batch: List[Tuple[int, AllocationProblem, str]] = []

    def run_window() -> None:
        nonlocal cells_cached
        _cell_records, _full_cells, window_cached, window_split = _plan_and_execute(
            batch, config, store, resume, backend, target
        )
        cells_cached += window_cached
        for name, split in window_split.items():
            fold = cache_by_allocator.setdefault(name, {"hit": 0, "miss": 0})
            fold["hit"] += split["hit"]
            fold["miss"] += split["miss"]
        batch.clear()

    for problem in problems:
        if max_instances is not None and instances >= max_instances:
            break
        if pressure_floor is not None and problem.max_pressure <= pressure_floor:
            continue
        batch.append((instances, problem, problem.name))
        instances += 1
        if len(batch) >= window:
            run_window()
    if batch:
        run_window()

    cells_total = instances * cells_per_instance
    manifest = RunManifest(
        run_id=uuid.uuid4().hex[:12],
        created_at=utc_now_iso(),
        suite=suite,
        target=target,
        seed=seed,
        scale=scale,
        config={
            "allocators": list(config.allocators),
            "register_counts": list(config.register_counts),
            "verify": config.verify,
            "skip_trivial": config.skip_trivial,
            "jobs": config.jobs,
            "resume": resume,
            "backend": backend.name,
            "window": window,
        },
        git_rev=current_git_rev(),
        instances=instances,
        cells_total=cells_total,
        cells_computed=cells_total - cells_cached,
        cells_cached=cells_cached,
        wall_time_seconds=time.perf_counter() - started,
        cache_by_allocator=cache_by_allocator,
    )
    store.add_manifest(manifest)
    store.flush()
    return manifest
