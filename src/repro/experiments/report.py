"""ASCII rendering of experiment results.

The benchmarks print these tables so the regenerated figures can be read off
the console / ``bench_output.txt`` directly; the values are the same series
the paper plots as bar charts (Figures 8-10, 14-15) and box plots (11-13).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.experiments.stats import DistributionSummary


def _format_cell(value: float, width: int = 8) -> str:
    """Format a numeric cell (NaN prints as '-')."""
    if value != value:  # NaN
        return "-".rjust(width)
    return f"{value:.3f}".rjust(width)


def render_table(
    rows: Mapping[str, Mapping],
    columns: Sequence,
    row_header: str = "allocator",
    column_format=str,
) -> str:
    """Render a nested mapping ``rows[row][column] -> value`` as a table."""
    column_labels = [column_format(c) for c in columns]
    width = max([len(row_header)] + [len(str(r)) for r in rows])
    header = str(row_header).ljust(width) + " | " + " ".join(label.rjust(8) for label in column_labels)
    separator = "-" * len(header)
    lines = [header, separator]
    for row_name, row in rows.items():
        cells = " ".join(_format_cell(row.get(column, float("nan"))) for column in columns)
        lines.append(str(row_name).ljust(width) + " | " + cells)
    return "\n".join(lines)


def render_distribution_table(
    table: Mapping[str, Mapping[int, DistributionSummary]],
    register_counts: Sequence[int],
) -> str:
    """Render distribution summaries as ``median [p25, p75] (max)`` cells."""
    width = max(len("allocator"), max((len(str(a)) for a in table), default=0))
    header = (
        "allocator".ljust(width)
        + " | "
        + " ".join(f"{count:>24}" for count in register_counts)
    )
    lines = [header, "-" * len(header)]
    for allocator, by_count in table.items():
        cells = []
        for count in register_counts:
            summary = by_count.get(count)
            if summary is None or summary.count == 0:
                cells.append("-".rjust(24))
            else:
                cells.append(
                    f"{summary.median:.2f} [{summary.p25:.2f},{summary.p75:.2f}] <{summary.maximum:.2f}".rjust(24)
                )
        lines.append(str(allocator).ljust(width) + " | " + " ".join(cells))
    return "\n".join(lines)


def render_figure(title: str, body: str) -> str:
    """Wrap a rendered table with a titled banner."""
    banner = "=" * max(len(title), 20)
    return f"{banner}\n{title}\n{banner}\n{body}\n"


def render_key_values(values: Dict[str, float]) -> str:
    """Render a flat mapping of named scalars."""
    width = max((len(k) for k in values), default=0)
    return "\n".join(f"{key.ljust(width)} : {value}" for key, value in values.items())
