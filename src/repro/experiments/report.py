"""ASCII, markdown and HTML rendering of experiment results.

The benchmarks print the ASCII tables so the regenerated figures can be read
off the console / ``bench_output.txt`` directly; the values are the same
series the paper plots as bar charts (Figures 8-10, 14-15) and box plots
(11-13).  The ``repro-alloc report`` subcommand additionally renders the same
data as markdown or a standalone HTML page per figure.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Mapping, Sequence

from repro.experiments.stats import DistributionSummary


def _format_cell(value: float, width: int = 8) -> str:
    """Format a numeric cell (NaN prints as '-')."""
    if value != value:  # NaN
        return "-".rjust(width)
    return f"{value:.3f}".rjust(width)


def render_table(
    rows: Mapping[str, Mapping],
    columns: Sequence,
    row_header: str = "allocator",
    column_format=str,
) -> str:
    """Render a nested mapping ``rows[row][column] -> value`` as a table."""
    column_labels = [column_format(c) for c in columns]
    width = max([len(row_header)] + [len(str(r)) for r in rows])
    header = str(row_header).ljust(width) + " | " + " ".join(label.rjust(8) for label in column_labels)
    separator = "-" * len(header)
    lines = [header, separator]
    for row_name, row in rows.items():
        cells = " ".join(_format_cell(row.get(column, float("nan"))) for column in columns)
        lines.append(str(row_name).ljust(width) + " | " + cells)
    return "\n".join(lines)


def render_distribution_table(
    table: Mapping[str, Mapping[int, DistributionSummary]],
    register_counts: Sequence[int],
) -> str:
    """Render distribution summaries as ``median [p25, p75] (max)`` cells."""
    width = max(len("allocator"), max((len(str(a)) for a in table), default=0))
    header = (
        "allocator".ljust(width)
        + " | "
        + " ".join(f"{count:>24}" for count in register_counts)
    )
    lines = [header, "-" * len(header)]
    for allocator, by_count in table.items():
        cells = []
        for count in register_counts:
            summary = by_count.get(count)
            if summary is None or summary.count == 0:
                cells.append("-".rjust(24))
            else:
                cells.append(
                    f"{summary.median:.2f} [{summary.p25:.2f},{summary.p75:.2f}] <{summary.maximum:.2f}".rjust(24)
                )
        lines.append(str(allocator).ljust(width) + " | " + " ".join(cells))
    return "\n".join(lines)


def render_figure(title: str, body: str) -> str:
    """Wrap a rendered table with a titled banner."""
    banner = "=" * max(len(title), 20)
    return f"{banner}\n{title}\n{banner}\n{body}\n"


def render_key_values(values: Dict[str, float]) -> str:
    """Render a flat mapping of named scalars."""
    width = max((len(k) for k in values), default=0)
    return "\n".join(f"{key.ljust(width)} : {value}" for key, value in values.items())


def render_cache_split(manifest) -> str:
    """Per-allocator store cache hit/miss table of one :class:`RunManifest`.

    Manifests written before ``cache_by_allocator`` existed render a single
    line falling back to the run-level totals.
    """
    split = getattr(manifest, "cache_by_allocator", None) or {}
    if not split:
        return (
            f"cache split unavailable (pre-split manifest): "
            f"{manifest.cells_cached}/{manifest.cells_total} cells cached"
        )
    width = max(len("allocator"), max(len(name) for name in split))
    header = f"{'allocator'.ljust(width)} | {'hit':>6} {'miss':>6} {'rate':>6}"
    lines = [header, "-" * len(header)]
    for name in sorted(split):
        hits = int(split[name].get("hit", 0))
        misses = int(split[name].get("miss", 0))
        total = hits + misses
        rate = hits / total if total else 1.0
        lines.append(f"{name.ljust(width)} | {hits:>6d} {misses:>6d} {rate:>6.3f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# markdown / HTML reports
# ---------------------------------------------------------------------- #
def _ordered_columns(rows: Mapping[str, Mapping]) -> List:
    """Union of the inner-mapping keys, in first-appearance order."""
    columns: List = []
    for row in rows.values():
        for column in row:
            if column not in columns:
                columns.append(column)
    return columns


def _column_label(column) -> str:
    """Integer columns are register counts; label them ``R=<n>``."""
    return f"R={column}" if isinstance(column, int) else str(column)


def _figure_table_cells(result) -> "tuple[List[str], List[List[str]]] | None":
    """Flatten a :class:`FigureResult` into header + string rows, if tabular.

    Mean-cost figures carry ``series[row][column] -> float``; distribution
    figures carry ``distributions[allocator][R] -> DistributionSummary``
    (rendered as ``median [p25, p75] <max>``).  Irregular results (the
    companion studies) return ``None`` and fall back to the ASCII rendering.
    """
    if result.distributions:
        rows = result.distributions
        columns = _ordered_columns(rows)
        header = ["allocator"] + [_column_label(c) for c in columns]
        body = []
        for name, by_column in rows.items():
            cells = [str(name)]
            for column in columns:
                summary = by_column.get(column)
                if summary is None or summary.count == 0:
                    cells.append("-")
                else:
                    cells.append(
                        f"{summary.median:.3f} [{summary.p25:.3f}, {summary.p75:.3f}] <{summary.maximum:.3f}"
                    )
            body.append(cells)
        return header, body
    if result.series and all(
        isinstance(row, Mapping) and all(isinstance(v, (int, float)) for v in row.values())
        for row in result.series.values()
    ):
        rows = result.series
        columns = _ordered_columns(rows)
        header = [""] + [_column_label(c) for c in columns]
        body = []
        for name, row in rows.items():
            cells = [str(name)]
            for column in columns:
                value = row.get(column, float("nan"))
                cells.append("-" if value != value else f"{value:.3f}")
            body.append(cells)
        return header, body
    return None


def render_markdown_report(result) -> str:
    """Render a :class:`~repro.experiments.figures.FigureResult` as markdown."""
    lines = [f"# {result.title}", ""]
    table = _figure_table_cells(result)
    if table is None:
        lines += ["```", result.rendered.rstrip("\n"), "```"]
    else:
        header, body = table
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join([" --- "] * len(header)) + "|")
        for cells in body:
            lines.append("| " + " | ".join(cells) + " |")
    if result.unbounded_records:
        lines += ["", f"*Excluded {result.unbounded_records} unbounded record(s) "
                      "(heuristic spilled although the optimum did not).*"]
    lines += ["", f"*Records: {len(result.records)}.*", ""]
    return "\n".join(lines)


def render_html_report(result) -> str:
    """Render a :class:`~repro.experiments.figures.FigureResult` as a standalone HTML page."""
    title = _html.escape(result.title)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{title}</title>",
        "<style>table{border-collapse:collapse}th,td{border:1px solid #999;"
        "padding:4px 8px;text-align:right}th:first-child,td:first-child{text-align:left}</style>",
        "</head><body>",
        f"<h1>{title}</h1>",
    ]
    table = _figure_table_cells(result)
    if table is None:
        parts.append(f"<pre>{_html.escape(result.rendered)}</pre>")
    else:
        header, body = table
        parts.append("<table>")
        parts.append("<tr>" + "".join(f"<th>{_html.escape(c)}</th>" for c in header) + "</tr>")
        for cells in body:
            parts.append("<tr>" + "".join(f"<td>{_html.escape(c)}</td>" for c in cells) + "</tr>")
        parts.append("</table>")
    if result.unbounded_records:
        parts.append(
            f"<p><em>Excluded {result.unbounded_records} unbounded record(s).</em></p>"
        )
    parts.append(f"<p><em>Records: {len(result.records)}.</em></p>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
