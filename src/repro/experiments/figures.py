"""Per-figure reproduction entry points.

Each ``figureN`` function rebuilds the corresponding corpus, runs the same
allocators the paper compares, normalizes against the optimal allocator and
returns a :class:`FigureResult` carrying both the structured series and a
rendered ASCII table.  The benchmark harness (``benchmarks/``) calls these
functions and prints the rendered text, so ``bench_output.txt`` contains the
regenerated figures.

The ``scale`` parameter shrinks the synthetic corpora (fraction of functions
per program) so quick runs stay quick; ``scale=1.0`` is the full corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.alloc import get_allocator
from repro.experiments.report import render_distribution_table, render_figure, render_table
from repro.experiments.runner import ExperimentConfig, InstanceRecord, run_experiment
from repro.experiments.stats import (
    DistributionSummary,
    distribution_by,
    mean_ratio_by,
    normalize_records,
    per_program_means,
)
from repro.workloads.corpus import Corpus, build_corpus

#: allocators compared in the chordal study (Figures 8-13).
CHORDAL_ALLOCATORS = ("GC", "NL", "FPL", "BL", "BFPL", "Optimal")
#: allocators compared in the non-chordal JVM study (Figures 14-15).
GENERAL_ALLOCATORS = ("LS", "BLS", "GC", "LH", "Optimal")
#: register counts of the chordal study.
CHORDAL_REGISTER_COUNTS = (1, 2, 4, 8, 16, 32)
#: register counts of the JVM study.
GENERAL_REGISTER_COUNTS = (2, 4, 6, 8, 10, 12, 14, 16)


@dataclass(frozen=True)
class FigureSpec:
    """The sweep a figure needs: corpus and (allocator × register) grid.

    The ``sweep``/``report`` CLI subcommands and ``figure --store`` use these
    specs to run the sweep through the experiment store and to filter a
    store's records back down to one figure's cells.
    """

    suite: str
    target: Optional[str]
    allocators: Sequence[str]
    register_counts: Sequence[int]


#: sweep specifications of the figures whose records can flow through the
#: experiment store (the companion studies drive the allocators directly).
FIGURE_SPECS: Dict[str, FigureSpec] = {
    "figure8": FigureSpec("spec2000int", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure9": FigureSpec("eembc", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure10": FigureSpec("lao_kernels", "armv7-a8", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure11": FigureSpec("spec2000int", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure12": FigureSpec("eembc", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure13": FigureSpec("lao_kernels", "armv7-a8", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS),
    "figure14": FigureSpec("specjvm98", "jikesrvm-ia32", GENERAL_ALLOCATORS, GENERAL_REGISTER_COUNTS),
    "figure15": FigureSpec("specjvm98", "jikesrvm-ia32", GENERAL_ALLOCATORS, (6,)),
}


@dataclass
class FigureResult:
    """Structured result of one reproduced figure."""

    figure: str
    title: str
    #: mean normalized cost per allocator per register count (bar-chart figures)
    #: or per program (Figure 15).
    series: Dict[str, Dict] = field(default_factory=dict)
    #: distribution summaries (box-plot figures 11-13), if applicable.
    distributions: Dict[str, Dict[int, DistributionSummary]] = field(default_factory=dict)
    #: raw per-instance records, for downstream analysis.
    records: List[InstanceRecord] = field(default_factory=list)
    #: number of instances whose optimum was 0 but the heuristic spilled.
    unbounded_records: int = 0
    rendered: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered


# ---------------------------------------------------------------------- #
# shared machinery
# ---------------------------------------------------------------------- #
def _run_suite(
    suite: str,
    target: Optional[str],
    allocators: Sequence[str],
    register_counts: Sequence[int],
    seed: int,
    scale: float,
    max_instances: Optional[int],
    verify: bool,
) -> List[InstanceRecord]:
    """Build a corpus and run the sweep."""
    corpus: Corpus = build_corpus(suite, target=target, seed=seed, scale=scale)
    config = ExperimentConfig(
        allocators=list(allocators),
        register_counts=list(register_counts),
        verify=verify,
    )
    return run_experiment(corpus, config, max_instances=max_instances)


def _mean_cost_figure(
    figure: str,
    title: str,
    suite: str,
    target: Optional[str],
    allocators: Sequence[str],
    register_counts: Sequence[int],
    seed: int,
    scale: float,
    max_instances: Optional[int],
    verify: bool,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Common implementation of the mean-normalized-cost figures (8, 9, 10, 14)."""
    if records is None:
        records = _run_suite(suite, target, allocators, register_counts, seed, scale, max_instances, verify)
    normalized, unbounded = normalize_records(records)
    series = mean_ratio_by(normalized, allocators, register_counts)
    table = render_table(series, register_counts, row_header="allocator", column_format=lambda c: f"R={c}")
    return FigureResult(
        figure=figure,
        title=title,
        series=series,
        records=records,
        unbounded_records=unbounded,
        rendered=render_figure(title, table),
    )


def _distribution_figure(
    figure: str,
    title: str,
    suite: str,
    target: Optional[str],
    allocators: Sequence[str],
    register_counts: Sequence[int],
    seed: int,
    scale: float,
    max_instances: Optional[int],
    verify: bool,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Common implementation of the distribution figures (11, 12, 13)."""
    if records is None:
        records = _run_suite(suite, target, allocators, register_counts, seed, scale, max_instances, verify)
    normalized, unbounded = normalize_records(records)
    heuristics = [a for a in allocators if a.lower() != "optimal"]
    distributions = distribution_by(normalized, heuristics, register_counts)
    table = render_distribution_table(distributions, register_counts)
    return FigureResult(
        figure=figure,
        title=title,
        distributions=distributions,
        records=records,
        unbounded_records=unbounded,
        rendered=render_figure(title, table),
    )


# ---------------------------------------------------------------------- #
# chordal study (Open64-style pipeline)
# ---------------------------------------------------------------------- #
def figure8(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 8: mean normalized allocation cost, SPEC CPU2000int on ST231."""
    return _mean_cost_figure(
        "figure8",
        "Figure 8 - Allocation cost, SPEC CPU 2000int stand-in on ST231 (normalized to Optimal)",
        "spec2000int",
        "st231",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure9(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 9: mean normalized allocation cost, EEMBC on ST231."""
    return _mean_cost_figure(
        "figure9",
        "Figure 9 - Allocation cost, EEMBC stand-in on ST231 (normalized to Optimal)",
        "eembc",
        "st231",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure10(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 10: mean normalized allocation cost, lao-kernels on ARMv7."""
    return _mean_cost_figure(
        "figure10",
        "Figure 10 - Allocation cost, lao-kernels stand-in on ARMv7 (normalized to Optimal)",
        "lao_kernels",
        "armv7-a8",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure11(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 11: distribution of normalized costs over SPEC CPU2000int programs."""
    return _distribution_figure(
        "figure11",
        "Figure 11 - Distribution of normalized costs, SPEC CPU 2000int stand-in on ST231",
        "spec2000int",
        "st231",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure12(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 12: distribution of normalized costs over EEMBC programs."""
    return _distribution_figure(
        "figure12",
        "Figure 12 - Distribution of normalized costs, EEMBC stand-in on ST231",
        "eembc",
        "st231",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure13(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = CHORDAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 13: distribution of normalized costs over lao-kernels programs."""
    return _distribution_figure(
        "figure13",
        "Figure 13 - Distribution of normalized costs, lao-kernels stand-in on ARMv7",
        "lao_kernels",
        "armv7-a8",
        CHORDAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


# ---------------------------------------------------------------------- #
# non-chordal study (JikesRVM-style pipeline)
# ---------------------------------------------------------------------- #
def figure14(
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = GENERAL_REGISTER_COUNTS,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 14: mean normalized cost on SPEC JVM98 stand-in, R from 2 to 16."""
    return _mean_cost_figure(
        "figure14",
        "Figure 14 - Layered heuristic vs baselines, SPEC JVM98 stand-in (normalized to Optimal)",
        "specjvm98",
        "jikesrvm-ia32",
        GENERAL_ALLOCATORS,
        register_counts,
        seed,
        scale,
        max_instances,
        verify,
        records,
    )


def figure15(
    seed: int = 2013,
    scale: float = 1.0,
    register_count: int = 6,
    max_instances: Optional[int] = None,
    verify: bool = True,
    records: Optional[List[InstanceRecord]] = None,
) -> FigureResult:
    """Figure 15: per-benchmark normalized cost at 6 registers (JVM study)."""
    if records is None:
        records = _run_suite(
            "specjvm98",
            "jikesrvm-ia32",
            GENERAL_ALLOCATORS,
            (register_count,),
            seed,
            scale,
            max_instances,
            verify,
        )
    normalized, unbounded = normalize_records(records)
    table_data = per_program_means(normalized, list(GENERAL_ALLOCATORS), register_count)
    title = f"Figure 15 - Per-benchmark normalized cost at R={register_count}, SPEC JVM98 stand-in"
    table = render_table(table_data, list(GENERAL_ALLOCATORS), row_header="benchmark")
    return FigureResult(
        figure="figure15",
        title=title,
        series=table_data,
        records=records,
        unbounded_records=unbounded,
        rendered=render_figure(title, table),
    )


# ---------------------------------------------------------------------- #
# companion studies
# ---------------------------------------------------------------------- #
def inclusion_study(
    suite: str = "lao_kernels",
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Optional[Sequence[int]] = None,
    max_instances: Optional[int] = None,
) -> FigureResult:
    """Section 2.3: how often optimal spill sets are monotone in R.

    For every instance and every consecutive pair of register counts (by
    default every ``R`` from 1 up to the instance's MaxLive), check whether
    the optimal spill set at the larger count is included in the optimal
    spill set at the smaller count.  The paper reports 99.83% inclusion on
    SPEC JVM98.

    Exact optima are not unique, so ties are broken deterministically by
    perturbing each vertex weight with a tiny per-vertex epsilon (the same
    across register counts); without this the measured rate reflects solver
    tie-breaking noise rather than the structural property.
    """
    from repro.alloc.problem import AllocationProblem

    corpus = build_corpus(suite, seed=seed, scale=scale)
    optimal = get_allocator("Optimal")
    total = 0
    held = 0
    per_instance: Dict[str, Dict[str, float]] = {}
    problems = corpus.problems[:max_instances] if max_instances else corpus.problems
    for problem in problems:
        # Deterministic tie-breaking: add rank * epsilon to each weight.
        perturbed_graph = problem.graph.copy()
        epsilon = 1e-6 * max(1.0, min((w for w in perturbed_graph.weights().values() if w > 0), default=1.0))
        for rank, vertex in enumerate(sorted(perturbed_graph.vertices(), key=str)):
            perturbed_graph.set_weight(vertex, perturbed_graph.weight(vertex) + rank * epsilon)
        perturbed = AllocationProblem(graph=perturbed_graph, num_registers=1, name=problem.name)

        if register_counts is None:
            counts = list(range(1, perturbed.max_pressure + 1))
        else:
            counts = sorted(register_counts)
        spills_by_count = {}
        for register_count in counts:
            result = optimal.allocate(perturbed.with_registers(register_count))
            spills_by_count[register_count] = set(result.spilled)
        inclusion_flags = []
        for smaller, larger in zip(counts, counts[1:]):
            total += 1
            ok = spills_by_count[larger] <= spills_by_count[smaller]
            held += ok
            inclusion_flags.append(ok)
        per_instance[problem.name] = {
            "pairs": len(inclusion_flags),
            "held": sum(inclusion_flags),
        }
    rate = held / total if total else 1.0
    series = {"inclusion": {"rate": rate, "pairs": total, "held": held}}
    rendered = render_figure(
        "Section 2.3 - Optimal spill-set inclusion study",
        f"inclusion rate: {rate:.4f} ({held}/{total} consecutive register-count pairs)\n"
        f"suite: {suite}, instances: {len(problems)}",
    )
    return FigureResult(
        figure="inclusion_study",
        title="Spill-set inclusion when varying the register count",
        series={"summary": series["inclusion"], "per_instance": per_instance},
        rendered=rendered,
    )


def ablation_study(
    suite: str = "eembc",
    seed: int = 2013,
    scale: float = 1.0,
    register_counts: Sequence[int] = (2, 4, 8, 16),
    max_instances: Optional[int] = None,
    verify: bool = True,
) -> FigureResult:
    """Ablation of the two improvements (bias, fixed point) over plain NL."""
    allocators = ("NL", "BL", "FPL", "BFPL", "Optimal")
    records = _run_suite(suite, None, allocators, register_counts, seed, scale, max_instances, verify)
    normalized, unbounded = normalize_records(records)
    series = mean_ratio_by(normalized, allocators, register_counts)
    table = render_table(series, register_counts, row_header="allocator", column_format=lambda c: f"R={c}")
    title = f"Ablation - contribution of biasing and fixed-point iteration ({suite} stand-in)"
    return FigureResult(
        figure="ablation",
        title=title,
        series=series,
        records=records,
        unbounded_records=unbounded,
        rendered=render_figure(title, table),
    )


ALL_FIGURES = {
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "inclusion": inclusion_study,
    "ablation": ablation_study,
}
