"""The differential correctness oracle (execute-before/execute-after).

The paper's central claim is that layered allocation spills near-optimally
*without changing program semantics*.  This package proves the second half
of that claim on every run: it executes a program before and after the full
spill pipeline and diffs everything observable, fuzzes the pipeline with
seeded random programs, shrinks any counterexample to a minimal reproducer,
and files it in the permanent regression corpus.

Layout
------
:mod:`~repro.oracle.differential`
    Observation capture and diffing (imports only :mod:`repro.ir`).
:mod:`~repro.oracle.generator`
    Seeded, size-parameterized random program generation.
:mod:`~repro.oracle.harness`
    One program × allocator × target × R check through the pipeline.
:mod:`~repro.oracle.minimizer`
    Delta-debugging shrinkage of failing programs.
:mod:`~repro.oracle.campaign`
    Process-pool fuzz campaigns with experiment-store manifests.
:mod:`~repro.oracle.regressions`
    The minimized-counterexample corpus under ``tests/oracle/regressions/``.

Entry points: ``repro-alloc oracle`` on the command line, the opt-in
``oracle`` pipeline stage, or :func:`run_campaign` from Python.
"""

from repro.oracle.campaign import (
    CampaignConfig,
    CampaignResult,
    DEFAULT_REGISTER_COUNTS,
    run_campaign,
)
from repro.oracle.differential import (
    DEFAULT_ARGUMENT_SETS,
    DifferentialReport,
    Mismatch,
    Observation,
    compare_observations,
    diff_functions,
    observe,
)
from repro.oracle.generator import SIZE_PROFILES, generate_program, iter_programs
from repro.oracle.harness import OracleCheck, check_function, make_failure_predicate
from repro.oracle.minimizer import minimize
from repro.oracle.regressions import RegressionCase, load_regressions, save_regression

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DEFAULT_ARGUMENT_SETS",
    "DEFAULT_REGISTER_COUNTS",
    "DifferentialReport",
    "Mismatch",
    "Observation",
    "OracleCheck",
    "RegressionCase",
    "SIZE_PROFILES",
    "check_function",
    "compare_observations",
    "diff_functions",
    "generate_program",
    "iter_programs",
    "load_regressions",
    "make_failure_predicate",
    "minimize",
    "observe",
    "run_campaign",
    "save_regression",
]
