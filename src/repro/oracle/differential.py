"""Differential execution: observe a function before and after rewriting.

The paper's layered allocators claim to spill *without changing program
semantics*.  This module makes that claim checkable: it executes a function
on concrete inputs with :class:`repro.ir.interpreter.Interpreter`, collapses
the run into an :class:`Observation` of everything a caller could notice —
return value, termination, the ordered store trace and the final memory image
restricted to *visible* addresses (below
:data:`repro.alloc.spill_code.SPILL_SLOT_BASE`, so spill-slot traffic is
invisible exactly like real stack frames are) — and diffs the observations of
the original and the rewritten function.

Step, load and store counts are also recorded, but as *overhead* (spill code
legitimately executes more memory operations), never as a mismatch.

This module deliberately imports nothing from :mod:`repro.pipeline`; the
pipeline's ``oracle`` pass and the campaign harness build on it without
creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.spill_code import SPILL_SLOT_BASE
from repro.errors import OracleError
from repro.ir.function import Function
from repro.ir.interpreter import Interpreter

#: default concrete inputs each check runs on: all-zero, small distinct
#: values, and large values that exercise wrap-around — enough to distinguish
#: the rewrite bugs the fuzzer has found so far, cheap enough to run tens of
#: thousands of times.
DEFAULT_ARGUMENT_SETS: Tuple[Tuple[int, ...], ...] = (
    (0, 0, 0, 0),
    (1, 2, 3, 5),
    (7, 11, 254, 3),
    ((1 << 63) + 12345, 255, 1, 9),
)

#: default executed-instruction budget.  Oracle programs are generated to
#: terminate within a few thousand steps (protected loop counters, small
#: trip counts); spill code multiplies the dynamic instruction count, so the
#: *after* run gets a scaled budget (see :func:`diff_functions`).
DEFAULT_MAX_STEPS = 20_000


@dataclass(frozen=True)
class Observation:
    """Everything observable about one execution of one function."""

    arguments: Tuple[int, ...]
    return_value: Optional[int]
    terminated: bool
    #: ordered ``(address, value)`` store events at visible addresses.
    trace: Tuple[Tuple[int, int], ...]
    #: final memory restricted to visible addresses.
    memory: Tuple[Tuple[int, int], ...]
    #: overhead metrics — recorded, never diffed.
    steps: int = 0
    loads: int = 0
    stores: int = 0


def observe(
    function: Function,
    arguments: Sequence[int],
    max_steps: int = DEFAULT_MAX_STEPS,
    visible_limit: int = SPILL_SLOT_BASE,
) -> Observation:
    """Execute ``function`` and collapse the run into an :class:`Observation`.

    ``visible_limit`` bounds the observable address space: stores at or above
    it (the spill slots) are program-internal and excluded from the trace and
    the final-memory image.
    """
    result = Interpreter(function, max_steps=max_steps, record_trace=True).run(arguments)
    return Observation(
        arguments=tuple(int(a) for a in arguments),
        return_value=result.return_value,
        terminated=result.terminated,
        trace=tuple((a, v) for a, v in result.trace if a < visible_limit),
        memory=tuple(sorted((a, v) for a, v in result.memory.items() if a < visible_limit)),
        steps=result.steps,
        loads=result.loads,
        stores=result.stores,
    )


@dataclass(frozen=True)
class Mismatch:
    """One observable difference between a before/after pair."""

    #: which observable differed: ``return_value``, ``termination``,
    #: ``trace`` or ``memory``.
    kind: str
    arguments: Tuple[int, ...]
    before: object
    after: object

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.kind} differs on arguments {list(self.arguments)}: "
            f"before={self.before!r} after={self.after!r}"
        )


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of diffing one function against its rewritten form."""

    #: per-argument-set before/after observation pairs.
    pairs: Tuple[Tuple[Observation, Observation], ...]
    mismatches: Tuple[Mismatch, ...] = ()
    #: argument sets whose *before* run exhausted the step budget; those
    #: pairs are recorded but carry no verdict (``after`` only has to match
    #: on runs the original actually finished).
    budget_exhausted: Tuple[Tuple[int, ...], ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every finished run observed identical behaviour."""
        return not self.mismatches

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Sorted distinct mismatch kinds (minimizer compatibility key)."""
        return tuple(sorted({m.kind for m in self.mismatches}))

    @property
    def spill_overhead(self) -> Dict[str, int]:
        """Total extra steps/loads/stores the rewritten form executed."""
        overhead = {"steps": 0, "loads": 0, "stores": 0}
        for before, after in self.pairs:
            overhead["steps"] += after.steps - before.steps
            overhead["loads"] += after.loads - before.loads
            overhead["stores"] += after.stores - before.stores
        return overhead

    def describe(self, limit: int = 5) -> str:
        """Multi-line summary of the first ``limit`` mismatches."""
        if self.ok:
            return "no observable differences"
        lines = [m.describe() for m in self.mismatches[:limit]]
        hidden = len(self.mismatches) - limit
        if hidden > 0:
            lines.append(f"... and {hidden} more mismatch(es)")
        return "\n".join(lines)


def compare_observations(before: Observation, after: Observation) -> List[Mismatch]:
    """Diff two observations of the same argument set."""
    mismatches: List[Mismatch] = []
    if before.terminated != after.terminated:
        mismatches.append(
            Mismatch("termination", before.arguments, before.terminated, after.terminated)
        )
        # Without termination parity the remaining observables are noise.
        return mismatches
    if before.return_value != after.return_value:
        mismatches.append(
            Mismatch("return_value", before.arguments, before.return_value, after.return_value)
        )
    if before.trace != after.trace:
        mismatches.append(Mismatch("trace", before.arguments, before.trace, after.trace))
    if before.memory != after.memory:
        mismatches.append(Mismatch("memory", before.arguments, before.memory, after.memory))
    return mismatches


def observe_many(
    function: Function,
    argument_sets: Sequence[Sequence[int]] = DEFAULT_ARGUMENT_SETS,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> List[Observation]:
    """Observe ``function`` on every argument set.

    Campaigns call this once per program and reuse the result against every
    allocator × target × R rewrite — the *before* side never changes.
    """
    return [observe(function, arguments, max_steps=max_steps) for arguments in argument_sets]


def diff_functions(
    original: Function,
    rewritten: Function,
    argument_sets: Sequence[Sequence[int]] = DEFAULT_ARGUMENT_SETS,
    max_steps: int = DEFAULT_MAX_STEPS,
    after_budget_factor: int = 8,
    before: Optional[Sequence[Observation]] = None,
) -> DifferentialReport:
    """Execute ``original`` and ``rewritten`` on every argument set and diff.

    The rewritten function's step budget is ``after_budget_factor`` times the
    original's: spill-everywhere code legitimately executes several dynamic
    instructions per original one, and a too-small *after* budget would
    report a phantom termination mismatch.  A precomputed ``before``
    observation list (one per argument set, from :func:`observe_many`) skips
    re-executing the original; argument sets whose original run exhausted
    the budget skip the rewritten run entirely — they carry no verdict.
    """
    if before is None:
        before = observe_many(original, argument_sets, max_steps=max_steps)
    elif len(before) != len(argument_sets):
        raise ValueError(
            f"{len(before)} precomputed observations for {len(argument_sets)} argument sets"
        )
    pairs: List[Tuple[Observation, Observation]] = []
    mismatches: List[Mismatch] = []
    exhausted: List[Tuple[int, ...]] = []
    for before_obs, arguments in zip(before, argument_sets):
        if not before_obs.terminated:
            exhausted.append(tuple(int(a) for a in arguments))
            pairs.append((before_obs, before_obs))
            continue
        after = observe(rewritten, arguments, max_steps=max_steps * after_budget_factor)
        pairs.append((before_obs, after))
        mismatches.extend(compare_observations(before_obs, after))
    return DifferentialReport(
        pairs=tuple(pairs),
        mismatches=tuple(mismatches),
        budget_exhausted=tuple(exhausted),
    )


def raise_on_mismatch(report: DifferentialReport, name: str) -> None:
    """Raise :class:`OracleError` if ``report`` recorded any mismatch."""
    if not report.ok:
        raise OracleError(
            f"differential oracle caught a miscompile of {name!r} "
            f"({', '.join(report.kinds)}):\n{report.describe()}"
        )
