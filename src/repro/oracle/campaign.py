"""Fuzz campaigns: shard differential checks over the process pool.

A campaign is ``count`` seeded programs × the deduplicated allocator set ×
the chosen targets × the chosen register counts, each run through
:func:`repro.oracle.harness.check_function`.  With ``jobs > 1`` the program
indices are sharded round-robin over a
:class:`~concurrent.futures.ProcessPoolExecutor` — the same pattern as
:meth:`repro.pipeline.engine.Pipeline.run_many` — and workers *regenerate*
their programs from ``(seed, index)`` instead of unpickling them, so a shard
is a few integers on the wire.

Failures are minimized with :mod:`repro.oracle.minimizer` and written to the
regression corpus; the campaign itself is recorded as a
:class:`~repro.store.base.RunManifest` in the PR-2 experiment store, so
``repro-alloc oracle --store results.sqlite`` leaves the same provenance
trail as a sweep.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.oracle.differential import DEFAULT_ARGUMENT_SETS, DEFAULT_MAX_STEPS
from repro.oracle.generator import SIZE_PROFILES, generate_program
from repro.oracle.harness import (
    OracleCheck,
    canonical_allocators,
    check_program,
    make_failure_predicate,
)
from repro.oracle.minimizer import minimization_summary, minimize
from repro.oracle.regressions import save_regression
from repro.store.base import ExperimentStore, RunManifest, current_git_rev, utc_now_iso
from repro.targets import ALL_TARGETS
from repro.telemetry.tracer import Tracer, TraceSnapshot, current_tracer, use_tracer

#: default register counts: small enough to force spilling on every
#: generated program, so the spill-code path is actually exercised.
DEFAULT_REGISTER_COUNTS: Tuple[int, ...] = (4,)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one fuzz campaign needs (picklable)."""

    seed: int = 0
    count: int = 100
    size: str = "small"
    allocators: Tuple[str, ...] = ()  # empty = every registered allocator
    targets: Tuple[str, ...] = ()  # empty = all targets
    register_counts: Tuple[int, ...] = DEFAULT_REGISTER_COUNTS
    ssa: bool = True
    jobs: int = 1
    max_steps: int = DEFAULT_MAX_STEPS
    minimize_failures: bool = True
    #: cap on how many distinct failures get the (expensive) minimizer; the
    #: rest are still reported.
    max_minimized: int = 5
    #: derive machine-model constraints for this fraction of variables at
    #: the extract stage (``None`` = unconstrained, the historical shape).
    #: Restricts the allocator set to the constraint-aware family.
    constrain: Optional[float] = None

    def validate(self) -> "CampaignConfig":
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.constrain is not None and not 0.0 <= self.constrain <= 1.0:
            raise ValueError(f"constrain fraction {self.constrain} outside [0, 1]")
        if self.size not in SIZE_PROFILES:
            raise ValueError(
                f"unknown program size {self.size!r}; available: {sorted(SIZE_PROFILES)}"
            )
        for target in self.targets:
            if target not in ALL_TARGETS:
                raise ValueError(
                    f"unknown target {target!r}; available: {sorted(ALL_TARGETS)}"
                )
        for registers in self.register_counts:
            if registers < 1:
                raise ValueError(f"register counts must be >= 1, got {registers}")
        return self

    def resolved_targets(self) -> Tuple[str, ...]:
        return self.targets or tuple(sorted(ALL_TARGETS))

    def resolved_allocators(self) -> Dict[str, str]:
        resolved = canonical_allocators(self.allocators or None)
        if self.constrain is not None:
            from repro.alloc.base import get_allocator

            resolved = {
                canonical: registry_name
                for canonical, registry_name in resolved.items()
                if get_allocator(registry_name).supports_constraints
            }
            if not resolved:
                raise ValueError(
                    "constrained campaign selected no constraint-aware "
                    "allocator (NL/BL/FPL/BFPL/Optimal-BB)"
                )
        return resolved


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign."""

    config: CampaignConfig
    programs: int
    checks: int
    ok: int
    skipped: int
    failures: List[OracleCheck] = field(default_factory=list)
    #: paths of regression files written for minimized failures.
    regressions: List[Path] = field(default_factory=list)
    #: total spilled-variable count across ok checks (spill-coverage signal).
    spilled_total: int = 0
    wall_time_seconds: float = 0.0
    run_id: str = ""

    @property
    def passed(self) -> bool:
        """Whether the campaign found no bug."""
        return not self.failures

    def summary_lines(self) -> List[str]:
        """Human-readable campaign summary for the CLI."""
        lines = [
            f"oracle campaign: seed={self.config.seed} programs={self.programs} "
            f"size={self.config.size} checks={self.checks}",
            f"ok={self.ok} failures={len(self.failures)} skipped={self.skipped} "
            f"spilled_total={self.spilled_total} wall={self.wall_time_seconds:.2f}s",
        ]
        for failure in self.failures[:10]:
            lines.append(
                f"  FAIL {failure.program} allocator={failure.allocator} "
                f"target={failure.target} R={failure.registers} "
                f"[{','.join(failure.kinds)}]"
            )
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more failures")
        for path in self.regressions:
            lines.append(f"  minimized reproducer: {path}")
        return lines


def _run_shard(
    config: CampaignConfig,
    indices: Sequence[int],
    combos: Sequence[Tuple[str, str, int]],
    traced: bool = False,
) -> Tuple[int, int, int, int, List[OracleCheck], Optional[TraceSnapshot]]:
    """Worker entry point: check every (program × combo) of one shard.

    Returns ``(checks, ok, skipped, spilled_total, failures, snapshot)`` —
    passing checks are aggregated to counters so a large campaign ships only
    its failures back to the parent.  In-process (serial) callers record
    into the ambient tracer and get ``snapshot=None``; pool workers run with
    ``traced=True`` when the parent is tracing and ship their own tracer's
    snapshot back instead, including one ``oracle:program`` span per checked
    program and per-failure-kind counters.
    """
    own_tracer = Tracer() if traced else None
    tracer = own_tracer if own_tracer is not None else current_tracer()
    checks = ok = skipped = spilled_total = 0
    failures: List[OracleCheck] = []
    with use_tracer(tracer):
        for index in indices:
            function = generate_program(config.seed, index, size=config.size)
            with tracer.span("oracle:program", category="oracle", program=function.name) as span:
                program_failures = 0
                for check in check_program(
                    function,
                    combos,
                    ssa=config.ssa,
                    argument_sets=DEFAULT_ARGUMENT_SETS,
                    max_steps=config.max_steps,
                    constrain=config.constrain,
                ):
                    checks += 1
                    if check.status == "ok":
                        ok += 1
                        spilled_total += check.spilled
                    elif check.status == "skipped":
                        skipped += 1
                    else:
                        failures.append(check)
                        program_failures += 1
                        if tracer.enabled:
                            for kind in check.kinds:
                                tracer.count(f"oracle.kind.{kind}")
                span.set(failures=program_failures)
        if tracer.enabled:
            tracer.count("oracle.checks", checks)
            tracer.count("oracle.ok", ok)
            tracer.count("oracle.skipped", skipped)
            tracer.count("oracle.failures", len(failures))
    return checks, ok, skipped, spilled_total, failures, (
        own_tracer.snapshot() if own_tracer is not None else None
    )


def _minimize_failures(
    config: CampaignConfig,
    failures: Sequence[OracleCheck],
    regressions_dir: Optional[Path],
) -> Tuple[List[Path], List[str]]:
    """Shrink up to ``max_minimized`` failures and write them to the corpus."""
    if regressions_dir is None or not config.minimize_failures:
        return [], []
    written: List[Path] = []
    logs: List[str] = []
    seen_programs: set = set()
    for failure in failures:
        if len(written) >= config.max_minimized:
            break
        if failure.program in seen_programs:
            continue  # one reproducer per program is enough
        seen_programs.add(failure.program)
        index = int(failure.program.rsplit("_", 1)[1])
        function = generate_program(config.seed, index, size=config.size)
        predicate = make_failure_predicate(
            failure.allocator,
            failure.target,
            failure.registers,
            failure.kinds,
            ssa=config.ssa,
            max_steps=config.max_steps,
            constrain=config.constrain,
        )
        try:
            minimized = minimize(function, predicate)
        except ValueError:
            # Not reproducible in-parent (e.g. depends on worker state):
            # keep the unminimized program as the reproducer.
            minimized = function
        logs.append(minimization_summary(function, minimized))
        written.append(
            save_regression(
                Path(regressions_dir),
                minimized,
                failure.allocator,
                failure.target,
                failure.registers,
                failure.kinds,
                note=(
                    f"captured by `repro-alloc oracle --seed {config.seed} "
                    f"--count {config.count}`"
                ),
                ssa=config.ssa,
                constrain=config.constrain,
            )
        )
    return written, logs


def run_campaign(
    config: CampaignConfig,
    store: Optional[ExperimentStore] = None,
    regressions_dir: Optional[Path] = None,
    tracer: Optional[Tracer] = None,
) -> CampaignResult:
    """Run one fuzz campaign; see the module docstring for the shape.

    ``tracer`` (default: the ambient tracer) collects one ``oracle:program``
    span per generated program plus ``oracle.*`` outcome counters; pool
    workers ship snapshots back, merged in shard order.
    """
    config.validate()
    if tracer is None:
        tracer = current_tracer()
    started = time.perf_counter()
    allocators = config.resolved_allocators()
    targets = config.resolved_targets()
    combos: List[Tuple[str, str, int]] = [
        (registry_name, target, registers)
        for _canonical, registry_name in sorted(allocators.items())
        for target in targets
        for registers in config.register_counts
    ]
    indices = list(range(config.count))

    checks = ok = skipped = spilled_total = 0
    failures: List[OracleCheck] = []
    with use_tracer(tracer), tracer.span(
        "oracle:campaign",
        category="oracle",
        seed=config.seed,
        programs=len(indices),
        jobs=config.jobs,
    ):
        if config.jobs <= 1 or len(indices) <= 1:
            checks, ok, skipped, spilled_total, failures, _ = _run_shard(config, indices, combos)
        else:
            workers = min(config.jobs, len(indices))
            shards: List[List[int]] = [[] for _ in range(workers)]
            for position, index in enumerate(indices):
                shards[position % workers].append(index)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_shard, config, shard, combos, tracer.enabled)
                    for shard in shards
                ]
                # Futures are iterated in submission (shard) order, so worker
                # snapshots merge deterministically for a given sharding.
                for shard_index, future in enumerate(futures):
                    shard_checks, shard_ok, shard_skipped, shard_spilled, shard_failures, snapshot = (
                        future.result()
                    )
                    checks += shard_checks
                    ok += shard_ok
                    skipped += shard_skipped
                    spilled_total += shard_spilled
                    failures.extend(shard_failures)
                    if snapshot is not None:
                        tracer.merge(snapshot, label=f"worker-{shard_index}")

    failures.sort(key=lambda f: (f.program, f.allocator, f.target, f.registers))
    regressions, _logs = _minimize_failures(config, failures, regressions_dir)

    result = CampaignResult(
        config=config,
        programs=len(indices),
        checks=checks,
        ok=ok,
        skipped=skipped,
        failures=failures,
        regressions=regressions,
        spilled_total=spilled_total,
        wall_time_seconds=time.perf_counter() - started,
        run_id=uuid.uuid4().hex[:12],
    )

    if store is not None:
        store.add_manifest(
            RunManifest(
                run_id=result.run_id,
                created_at=utc_now_iso(),
                suite=f"oracle/{config.size}",
                target=",".join(targets),
                seed=config.seed,
                scale=None,
                config={
                    "kind": "oracle-campaign",
                    "count": config.count,
                    "size": config.size,
                    "allocators": sorted(allocators),
                    "targets": list(targets),
                    "register_counts": list(config.register_counts),
                    "ssa": config.ssa,
                    "constrain": config.constrain,
                    "jobs": config.jobs,
                    "failures": len(failures),
                    "skipped": skipped,
                },
                git_rev=current_git_rev(),
                instances=len(indices),
                cells_total=checks,
                cells_computed=checks - skipped,
                cells_cached=0,
                wall_time_seconds=result.wall_time_seconds,
            )
        )
        store.flush()
    return result
