"""Drive one program through the full pipeline and diff its semantics.

:func:`check_function` is the oracle's unit of work: run *extract →
allocate → assign → spill_code → loadstore_opt → verify* on a function with
one allocator/target/register-count combination, execute the function before
and after, and fold the outcome into an :class:`OracleCheck` — ``ok``,
``mismatch`` (observable semantics differ), ``error`` (a pipeline stage or
the interpreter raised on legal input: also a bug) or ``skipped`` (an
optional solver backend is missing).

Failures carry a *signature* (the sorted mismatch kinds, or the exception
class) so the delta-debugging minimizer can shrink a program while chasing
the same bug rather than whatever new one a smaller program happens to
trigger.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.base import get_allocator
from repro.errors import (
    NotChordalError,
    ReproError,
    SearchBudgetError,
    SolverUnavailableError,
)
from repro.ir.function import Function
from repro.oracle.differential import (
    DEFAULT_ARGUMENT_SETS,
    DEFAULT_MAX_STEPS,
    DifferentialReport,
    Observation,
    diff_functions,
    observe_many,
)
from repro.pipeline.engine import Pipeline
from repro.pipeline.spec import PipelineSpec


@dataclass(frozen=True)
class OracleCheck:
    """Outcome of one program × allocator × target × R differential check."""

    program: str
    allocator: str
    target: str
    registers: int
    #: ``ok`` | ``mismatch`` | ``error`` | ``skipped``.
    status: str
    #: failure signature: mismatch kinds, or ``("exception:<Class>",)``.
    kinds: Tuple[str, ...] = ()
    detail: str = ""
    #: variables the allocator spilled (0 means the check exercised no
    #: spill code — campaigns report this so low-pressure runs are visible).
    spilled: int = 0
    overhead: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether this check found a bug (mismatch or pipeline error)."""
        return self.status in ("mismatch", "error")


def failure_signature(report: Optional[DifferentialReport], error: Optional[BaseException]) -> Tuple[str, ...]:
    """The signature the minimizer preserves while shrinking."""
    if error is not None:
        return (f"exception:{type(error).__name__}",)
    if report is not None:
        return report.kinds
    return ()


def _static_input_check(
    function: Function, allocator: str, target: str, registers: int
) -> Optional[OracleCheck]:
    """Pre-execution filter: reject statically malformed input programs.

    Runs the machine-verifier's structural IR checkers (CFG integrity,
    defs-exist, opcode sanity — not strict-SSA, which the lowering stage
    establishes) before paying for interpretation.  A finding means the
    *generator* produced an illegal program, reported with a
    ``static:<CODE>`` signature so such failures cluster apart from genuine
    pipeline bugs.
    """
    from repro.check import render_diagnostics, static_errors

    errors = static_errors(function)
    if not errors:
        return None
    return OracleCheck(
        program=function.name,
        allocator=allocator,
        target=target,
        registers=registers,
        status="error",
        kinds=tuple(sorted({f"static:{d.code}" for d in errors})),
        detail="statically invalid input program:\n" + render_diagnostics(errors),
    )


def _mismatch_detail(report: DifferentialReport, rewritten: Function) -> str:
    """Triage a mismatch: append static findings on the rewritten function.

    When the spill-rewritten function is itself statically broken (an
    ALLOC/SPL-style structural violation surfaced as IR damage), saying so in
    the detail turns "outputs differ" into an actionable lead.
    """
    from repro.check import render_diagnostics, static_errors

    detail = report.describe()
    static = static_errors(rewritten)
    if static:
        detail += "\nstatic diagnostics of the rewritten function:\n" + render_diagnostics(static)
    return detail


def _checked(
    function: Function,
    allocator: str,
    target: str,
    registers: int,
    runner,
    argument_sets: Sequence[Sequence[int]],
    max_steps: int,
    before: Optional[Sequence[Observation]] = None,
) -> OracleCheck:
    """Shared core: run ``runner`` (→ pipeline context), diff, classify."""
    try:
        context = runner()
        if context.rewritten is None:
            raise ReproError(
                f"pipeline for {allocator!r} produced no rewritten function "
                f"(stages run: {list(context.stages_run)})"
            )
        report = diff_functions(
            function,
            context.rewritten,
            argument_sets=argument_sets,
            max_steps=max_steps,
            before=before,
        )
    except (SolverUnavailableError, SearchBudgetError, NotChordalError) as error:
        # Documented limits, not wrong answers: missing scipy, the
        # branch-and-bound node budget, or a chordal-only allocator (the
        # paper's layered family) asked to solve a non-SSA general graph —
        # the experiment harness partitions allocators the same way
        # (``CHORDAL_ALLOCATORS`` vs ``GENERAL_ALLOCATORS``).
        return OracleCheck(
            program=function.name,
            allocator=allocator,
            target=target,
            registers=registers,
            status="skipped",
            detail=str(error),
        )
    except ReproError as error:
        return OracleCheck(
            program=function.name,
            allocator=allocator,
            target=target,
            registers=registers,
            status="error",
            kinds=failure_signature(None, error),
            detail=f"{type(error).__name__}: {error}",
        )
    spilled = context.result.num_spilled if context.result is not None else 0
    if report.ok:
        return OracleCheck(
            program=function.name,
            allocator=allocator,
            target=target,
            registers=registers,
            status="ok",
            spilled=spilled,
            overhead=report.spill_overhead,
        )
    return OracleCheck(
        program=function.name,
        allocator=allocator,
        target=target,
        registers=registers,
        status="mismatch",
        kinds=report.kinds,
        detail=_mismatch_detail(report, context.rewritten),
        spilled=spilled,
        overhead=report.spill_overhead,
    )


def check_function(
    function: Function,
    allocator: str,
    target: str,
    registers: int,
    ssa: bool = True,
    argument_sets: Sequence[Sequence[int]] = DEFAULT_ARGUMENT_SETS,
    max_steps: int = DEFAULT_MAX_STEPS,
    constrain: Optional[float] = None,
) -> OracleCheck:
    """Run one full differential check; never raises for in-scope failures.

    ``constrain`` derives machine-model constraints (register classes,
    pre-colorings) for that fraction of variables at the extract stage —
    the differential contract is unchanged: spill code must preserve
    semantics whatever the constraints did to the allocation.
    """
    rejected = _static_input_check(function, allocator, target, registers)
    if rejected is not None:
        return rejected
    spec = PipelineSpec(
        allocator=allocator,
        target=target,
        registers=registers,
        ssa=ssa,
        constrain=constrain,
    )
    return _checked(
        function,
        allocator,
        target,
        registers,
        lambda: Pipeline(spec).run(function),
        argument_sets,
        max_steps,
    )


#: front-end stage chain shared by every combo of one program × target.
_FRONT_STAGES = ("liveness", "interference")


def check_program(
    function: Function,
    combos: Sequence[Tuple[str, str, int]],
    ssa: bool = True,
    argument_sets: Sequence[Sequence[int]] = DEFAULT_ARGUMENT_SETS,
    max_steps: int = DEFAULT_MAX_STEPS,
    constrain: Optional[float] = None,
) -> List[OracleCheck]:
    """Differentially check one program against ``(allocator, target, R)`` combos.

    The fast path for campaigns: the *before* observations are computed once
    per program, the liveness/interference front-end once per target, and
    the packaged :class:`~repro.alloc.problem.AllocationProblem` once per
    ``(target, R)`` — so its shared PEO/clique caches (PR 1) serve every
    allocator.  Results are equivalent to calling :func:`check_function` per
    combo, just without the redundant work.
    """
    if combos:
        allocator0, target0, registers0 = combos[0]
        rejected = _static_input_check(function, allocator0, target0, registers0)
        if rejected is not None:
            return [
                dataclasses.replace(
                    rejected, allocator=allocator, target=target, registers=registers
                )
                for allocator, target, registers in combos
            ]
    before = observe_many(function, argument_sets, max_steps=max_steps)

    by_target: Dict[str, List[Tuple[str, int]]] = {}
    for allocator, target, registers in combos:
        by_target.setdefault(target, []).append((allocator, registers))

    checks: List[OracleCheck] = []
    for target, pairs in by_target.items():
        try:
            front = Pipeline(
                PipelineSpec(
                    allocator=pairs[0][0], target=target, ssa=ssa, stages=_FRONT_STAGES
                )
            )
            front_context = front.run(function)
        except ReproError as error:
            for allocator, registers in pairs:
                checks.append(
                    OracleCheck(
                        program=function.name,
                        allocator=allocator,
                        target=target,
                        registers=registers,
                        status="error",
                        kinds=failure_signature(None, error),
                        detail=f"{type(error).__name__}: {error}",
                    )
                )
            continue

        extracted: Dict[int, object] = {}
        for allocator, registers in pairs:
            base = extracted.get(registers)
            if base is None:
                extract = Pipeline(
                    PipelineSpec(
                        allocator=allocator,
                        target=target,
                        registers=registers,
                        ssa=ssa,
                        stages=_FRONT_STAGES + ("extract",),
                        constrain=constrain,
                    )
                )
                try:
                    base = extract.run_context(front_context.evolve(num_registers=registers))
                except ReproError as error:
                    checks.append(
                        OracleCheck(
                            program=function.name,
                            allocator=allocator,
                            target=target,
                            registers=registers,
                            status="error",
                            kinds=failure_signature(None, error),
                            detail=f"{type(error).__name__}: {error}",
                        )
                    )
                    continue
                extracted[registers] = base
            spec = PipelineSpec(
                allocator=allocator,
                target=target,
                registers=registers,
                ssa=ssa,
                constrain=constrain,
            )
            checks.append(
                _checked(
                    function,
                    allocator,
                    target,
                    registers,
                    lambda spec=spec, base=base: Pipeline(spec).run_context(base),
                    argument_sets,
                    max_steps,
                    before=before,
                )
            )
    return checks


def make_failure_predicate(
    allocator: str,
    target: str,
    registers: int,
    signature: Tuple[str, ...],
    ssa: bool = True,
    argument_sets: Sequence[Sequence[int]] = DEFAULT_ARGUMENT_SETS,
    max_steps: int = DEFAULT_MAX_STEPS,
    constrain: Optional[float] = None,
):
    """Predicate for the minimizer: does a candidate still hit the same bug?

    A candidate counts as "still failing" when its check fails *and* shares
    at least one signature element with the original failure — shrinkage
    must not wander off to a different bug class.
    """
    wanted = set(signature)

    def is_failing(candidate: Function) -> bool:
        check = check_function(
            candidate,
            allocator,
            target,
            registers,
            ssa=ssa,
            argument_sets=argument_sets,
            max_steps=max_steps,
            constrain=constrain,
        )
        return check.failed and (not wanted or bool(wanted & set(check.kinds)))

    return is_failing


def canonical_allocators(names: Optional[Sequence[str]] = None) -> Dict[str, str]:
    """Resolve allocator names to a ``canonical name -> registry name`` map.

    The registry carries aliases (``layered`` → ``NL``); campaigns must run
    each allocator once, so names are deduplicated by the allocator's own
    ``name`` tag.  Unknown names raise through :func:`get_allocator`.
    """
    from repro.alloc.base import available_allocators

    chosen = list(names) if names else available_allocators()
    canonical: Dict[str, str] = {}
    for name in chosen:
        allocator = get_allocator(name)
        canonical.setdefault(allocator.name, name)
    return canonical
