"""Delta-debugging minimization of oracle counterexamples.

Given a failing program and a ``is_failing`` predicate (typically "the
differential oracle still reports the same kind of mismatch"), the minimizer
shrinks the program while *always* preserving two invariants:

* every intermediate candidate passes the IR verifier (so the reproducer is
  a legal program, not garbage the pipeline happens to choke on); and
* the returned program still satisfies ``is_failing`` — the minimizer never
  trades the bug away for size.

Three reduction strategies run to a fixpoint:

1. **ddmin instruction deletion** — chunks of non-terminator instructions
   (φs included) are deleted, with uses of any now-undefined register
   replaced by the constant 0, halving the chunk size down to single
   instructions (Zeller & Hildebrandt's ddmin adapted to structured IR);
2. **branch simplification** — each ``cbr`` is rewritten to an unconditional
   ``br`` along either arm, collapsing diamonds and unrolling loop exits;
3. **CFG tidying** — unreachable blocks are dropped and φ inputs from
   removed edges pruned.

The shipped regression corpus (``tests/oracle/regressions/``) is built from
minimizer output, so every golden case is a handful of instructions.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.errors import IRError, VerificationError
from repro.ir.function import Function
from repro.ir.instructions import Opcode, make_branch
from repro.ir.validate import verify_function
from repro.ir.values import Constant

IsFailing = Callable[[Function], bool]

#: a deletion site: (block label, "phi" | "instr", index within that list).
Site = Tuple[str, str, int]


def _is_valid(function: Function) -> bool:
    """Whether the candidate is structurally legal IR."""
    try:
        verify_function(function, require_ssa=False)
    except (VerificationError, IRError):
        return False
    return True


def _deletion_sites(function: Function) -> List[Site]:
    """Every instruction that may be deleted (terminators must stay)."""
    sites: List[Site] = []
    for block in function:
        for index in range(len(block.phis)):
            sites.append((block.label, "phi", index))
        for index, instruction in enumerate(block.instructions):
            if not instruction.is_terminator:
                sites.append((block.label, "instr", index))
    return sites


def _delete(function: Function, doomed: Sequence[Site]) -> Function:
    """Clone ``function`` without the ``doomed`` sites, patching dangling uses.

    Registers that lose their last definition have every remaining use
    replaced by the constant 0, keeping the candidate verifiable.
    """
    candidate = function.clone()
    doomed_set = set(doomed)
    for block in candidate:
        block.phis = [
            phi
            for index, phi in enumerate(block.phis)
            if (block.label, "phi", index) not in doomed_set
        ]
        block.instructions = [
            instruction
            for index, instruction in enumerate(block.instructions)
            if (block.label, "instr", index) not in doomed_set
        ]
    defined = candidate.defined_registers()
    zero = Constant(0)
    for block in candidate:
        for instruction in block.all_instructions():
            for reg in list(instruction.used_registers()):
                if reg not in defined:
                    instruction.replace_use(reg, zero)
    return candidate


def _tidy(function: Function) -> Function:
    """Drop unreachable blocks and prune φ inputs from removed edges."""
    candidate = function.clone()
    reachable = set()
    stack = [candidate.entry_label]
    while stack:
        label = stack.pop()
        if label in reachable or label is None:
            continue
        reachable.add(label)
        stack.extend(candidate.block(label).successors())
    candidate.blocks = {
        label: block for label, block in candidate.blocks.items() if label in reachable
    }
    zero = Constant(0)
    for block in candidate:
        predecessors = set(candidate.predecessors(block.label))
        kept = []
        for phi in block.phis:
            phi.incoming = {
                label: value for label, value in phi.incoming.items() if label in predecessors
            }
            phi.uses = list(phi.incoming.values())
            if phi.incoming:
                kept.append(phi)
        dead_targets = {phi.target for phi in block.phis if phi not in kept}
        block.phis = kept
        if dead_targets:
            defined = candidate.defined_registers()
            for other in candidate:
                for instruction in other.all_instructions():
                    for reg in list(instruction.used_registers()):
                        if reg in dead_targets and reg not in defined:
                            instruction.replace_use(reg, zero)
    return candidate


def _collapse_trivial_blocks(function: Function) -> Function:
    """Thread jumps through blocks that contain nothing but a ``br``.

    Every predecessor of such a block is redirected to its unique successor
    (φ inputs re-attributed edge by edge), after which the trivial block is
    unreachable and :func:`_tidy` drops it.  Cycles of trivial blocks are
    handled by the one-pass sweep: each block is threaded at most once per
    call, and the minimizer's round loop reaches the fixpoint.
    """
    candidate = function.clone()
    for block in list(candidate):
        if block.label == candidate.entry_label or block.phis:
            continue
        if len(block.instructions) != 1 or block.instructions[0].opcode is not Opcode.BR:
            continue
        successor_label = block.instructions[0].targets[0]
        if successor_label == block.label:
            continue  # a self-loop has nothing to thread
        successor = candidate.block(successor_label)
        predecessors = candidate.predecessors(block.label)
        conflict = any(
            label in phi.incoming and phi.incoming[label] != phi.incoming.get(block.label)
            for phi in successor.phis
            for label in predecessors
        )
        if conflict:
            continue
        for label in predecessors:
            terminator = candidate.block(label).terminator
            if terminator is None:
                continue
            terminator.targets = [
                successor_label if t == block.label else t for t in terminator.targets
            ]
            for phi in successor.phis:
                if block.label in phi.incoming:
                    phi.add_incoming(label, phi.incoming[block.label])
    return _tidy(candidate)


def _branch_candidates(function: Function) -> List[Function]:
    """Every single-cbr-to-br rewrite of ``function``, tidied."""
    candidates: List[Function] = []
    for block in function:
        terminator = block.terminator
        if terminator is None or terminator.opcode is not Opcode.CBR:
            continue
        for target in terminator.targets:
            candidate = function.clone()
            candidate.block(block.label).instructions[-1] = make_branch(target)
            candidates.append(_tidy(candidate))
    return candidates


def _accept(candidate: Function, is_failing: IsFailing) -> bool:
    return _is_valid(candidate) and is_failing(candidate)


def _ddmin_pass(current: Function, is_failing: IsFailing) -> Tuple[Function, bool]:
    """One full ddmin sweep of instruction deletion; returns (program, shrunk?)."""
    shrunk = False
    sites = _deletion_sites(current)
    chunk = max(1, len(sites) // 2)
    while chunk >= 1:
        index = 0
        progressed = False
        while True:
            sites = _deletion_sites(current)
            if index >= len(sites):
                break
            doomed = sites[index : index + chunk]
            candidate = _delete(current, doomed)
            if _accept(candidate, is_failing):
                current = candidate
                shrunk = progressed = True
                # Sites shifted: restart this chunk size from the beginning.
                index = 0
            else:
                index += chunk
        if not progressed:
            chunk //= 2
    return current, shrunk


def minimize(
    function: Function,
    is_failing: IsFailing,
    max_rounds: int = 20,
) -> Function:
    """Shrink ``function`` while ``is_failing`` holds; return the reproducer.

    Raises :class:`ValueError` when the input does not fail to begin with —
    a minimizer that "fixes" the program by construction would silently hide
    the bug it was asked to capture.
    """
    if not is_failing(function):
        raise ValueError(
            f"minimize() needs a failing input, but {function.name!r} passes its predicate"
        )
    current = function.clone()
    for _ in range(max_rounds):
        current, shrunk = _ddmin_pass(current, is_failing)
        for candidate in _branch_candidates(current):
            if candidate.num_instructions() < current.num_instructions() and _accept(
                candidate, is_failing
            ):
                current = candidate
                shrunk = True
        threaded = _collapse_trivial_blocks(current)
        if threaded.num_instructions() < current.num_instructions() and _accept(
            threaded, is_failing
        ):
            current = threaded
            shrunk = True
        if not shrunk:
            break
    return current


def minimization_summary(original: Function, minimized: Function) -> str:
    """One-line description of a shrink, for campaign logs."""
    return (
        f"{original.name}: {original.num_instructions()} -> "
        f"{minimized.num_instructions()} instructions, "
        f"{len(original)} -> {len(minimized)} blocks"
    )
