"""Seeded, size-parameterized program generation for oracle campaigns.

Builds on the structured generator of :mod:`repro.workloads.programs` (and
therefore on :class:`repro.ir.builder.FunctionBuilder`), but with the
memory/call knobs turned on and shapes chosen to stress the spill pipeline
rather than to mimic benchmark suites:

* **diamonds and loops** — branchy control flow exercises φ lowering and the
  per-block scope of the load/store optimization;
* **high-pressure accumulator chains** — many simultaneously-live variables
  force real spilling at small ``R`` for every allocator;
* **memory traffic** — constant- and register-addressed loads/stores in the
  low visible address range interact with spill-slot tracking, which is where
  the availability bugs live.

Generation is deterministic: program ``index`` of campaign ``seed`` is
derived from the string ``"{seed}/{index}"`` (stable across processes and
Python versions, so campaign workers regenerate their shard instead of
pickling functions).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.workloads.programs import GeneratorProfile, generate_function

#: full opcode mix for oracle programs — unlike the workload generator's
#: benchmark-flavoured subset, this covers every binary opcode the
#: interpreter dispatches (division by zero and shift masking included).
ORACLE_OPCODES: Tuple[Opcode, ...] = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.CMP,
)


def _profile(statements: int, accumulators: int, loop_depth: int) -> GeneratorProfile:
    return GeneratorProfile(
        statements=statements,
        parameters=4,
        accumulators=accumulators,
        loop_depth=loop_depth,
        loop_probability=0.3,
        branch_probability=0.3,
        reuse_probability=0.45,
        opcodes=ORACLE_OPCODES,
        memory_probability=0.2,
        call_probability=0.08,
        memory_addresses=256,
        # Every oracle program must terminate: a run that exhausts the step
        # budget produces no differential verdict.  Loop counters are
        # protected from redefinition and trip counts stay small so even
        # nested loops finish in a few thousand interpreted steps.
        protect_loop_counters=True,
        loop_iterations=(3, 9),
    )


#: named program sizes for campaigns.  ``small`` keeps per-check cost low
#: enough for 500-program × all-allocator × all-target sweeps; ``large``
#: exists for overnight soaks.
SIZE_PROFILES: Dict[str, GeneratorProfile] = {
    "tiny": _profile(statements=10, accumulators=4, loop_depth=1),
    "small": _profile(statements=24, accumulators=6, loop_depth=2),
    "medium": _profile(statements=60, accumulators=10, loop_depth=2),
    "large": _profile(statements=140, accumulators=14, loop_depth=3),
}


def constrained_profile(size: str, fraction: float) -> GeneratorProfile:
    """A named size profile declaring constraint coverage.

    Only the declarative ``constrain_fraction`` differs — the emitted
    instruction stream (and thus every historical corpus) is byte-identical
    to the base profile's; campaigns map the fraction to
    ``PipelineSpec(constrain=...)`` at the extract stage.
    """
    import dataclasses

    try:
        profile = SIZE_PROFILES[size]
    except KeyError:
        raise ValueError(
            f"unknown oracle program size {size!r}; available: {sorted(SIZE_PROFILES)}"
        ) from None
    return dataclasses.replace(profile, constrain_fraction=fraction)


def program_rng(seed: int, index: int) -> random.Random:
    """The deterministic RNG of program ``index`` in campaign ``seed``."""
    return random.Random(f"{seed}/{index}")


def generate_program(seed: int, index: int, size: str = "small") -> Function:
    """Generate oracle program ``index`` of campaign ``seed``.

    The same ``(seed, index, size)`` triple always yields the same function,
    in any process — campaign workers rely on this to regenerate their shard.
    """
    try:
        profile = SIZE_PROFILES[size]
    except KeyError:
        raise ValueError(
            f"unknown oracle program size {size!r}; available: {sorted(SIZE_PROFILES)}"
        ) from None
    return generate_function(f"fuzz_{seed}_{index}", profile, rng=program_rng(seed, index))


def iter_programs(seed: int, count: int, size: str = "small") -> Iterator[Function]:
    """Yield ``count`` deterministic oracle programs for campaign ``seed``."""
    for index in range(count):
        yield generate_program(seed, index, size=size)
