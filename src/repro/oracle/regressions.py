"""The permanent regression corpus: minimized oracle counterexamples.

Every program the fuzzer catches and the minimizer shrinks is written to
``tests/oracle/regressions/`` as a self-describing textual IR file: comment
headers carry the allocator/target/register combination and the failure
signature that was observed when the case was captured.  The test suite
replays the corpus on every run — once the underlying bug is fixed the case
keeps guarding against its return forever.

File format (``#`` lines are comments to the IR parser)::

    # oracle-regression
    # allocator: NL
    # target: st231
    # registers: 4
    # signature: return_value,trace
    # note: captured by `repro-alloc oracle --seed 0 --count 500`
    func @fuzz_0_37(%p0, ...) { ... }
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.parser import parse_module
from repro.ir.printer import print_function

_HEADER_RE = re.compile(r"^#\s*([A-Za-z_][\w-]*)\s*:\s*(.*)$")


@dataclass(frozen=True)
class RegressionCase:
    """One replayable corpus entry."""

    path: Path
    function: Function
    #: the combination the failure was observed on; campaigns replay it
    #: first, then the standard sweep.
    allocator: Optional[str] = None
    target: Optional[str] = None
    registers: Optional[int] = None
    #: lowering mode the failure was observed under (SSA vs non-SSA).
    ssa: bool = True
    #: constraint fraction the failure was observed under (``None`` =
    #: unconstrained, the historical corpus shape).
    constrain: Optional[float] = None
    signature: Tuple[str, ...] = ()
    metadata: Dict[str, str] = field(default_factory=dict)


def regression_filename(program: str, allocator: str, target: str, registers: int) -> str:
    """Canonical corpus filename for one captured failure."""
    safe = re.sub(r"[^\w.-]", "_", f"{program}-{allocator}-{target}-r{registers}")
    return f"{safe}.ir"


def save_regression(
    directory: Path,
    function: Function,
    allocator: str,
    target: str,
    registers: int,
    signature: Tuple[str, ...],
    note: str = "",
    ssa: bool = True,
    constrain: Optional[float] = None,
) -> Path:
    """Write one minimized counterexample into the corpus; returns its path.

    The ``constrain`` header is only emitted when set, so unconstrained
    corpus files keep their historical byte shape.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / regression_filename(function.name, allocator, target, registers)
    lines = [
        "# oracle-regression",
        f"# allocator: {allocator}",
        f"# target: {target}",
        f"# registers: {registers}",
        f"# ssa: {'true' if ssa else 'false'}",
        f"# signature: {','.join(signature)}",
    ]
    if constrain is not None:
        lines.append(f"# constrain: {constrain}")
    if note:
        lines.append(f"# note: {note}")
    lines.append(print_function(function))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_regressions(directory: Path) -> List[RegressionCase]:
    """Load every ``*.ir`` corpus entry under ``directory`` (sorted by name)."""
    directory = Path(directory)
    cases: List[RegressionCase] = []
    if not directory.is_dir():
        return cases
    for path in sorted(directory.glob("*.ir")):
        text = path.read_text(encoding="utf-8")
        metadata: Dict[str, str] = {}
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped.startswith("#"):
                if stripped:
                    break  # headers end at the first IR line
                continue
            match = _HEADER_RE.match(stripped)
            if match:
                metadata[match.group(1).lower()] = match.group(2).strip()
        module = parse_module(text)
        functions = list(module)
        if not functions:
            continue
        registers = metadata.get("registers")
        constrain = metadata.get("constrain")
        signature = tuple(
            token.strip() for token in metadata.get("signature", "").split(",") if token.strip()
        )
        cases.append(
            RegressionCase(
                path=path,
                function=functions[0],
                allocator=metadata.get("allocator"),
                target=metadata.get("target"),
                registers=int(registers) if registers else None,
                ssa=metadata.get("ssa", "true").lower() != "false",
                constrain=float(constrain) if constrain else None,
                signature=signature,
                metadata=metadata,
            )
        )
    return cases
