"""Exact optimal allocation as an integer linear program.

The paper's "Optimal" baseline is an ILP ("an ILP-based allocator" for the
chordal study, the Diouf et al. HiPEAC'10 model for the JVM study).  The
model reproduced here is the maximal-clique formulation:

    maximize    Σ_v  w(v) · x_v
    subject to  Σ_{v ∈ C} x_v ≤ R        for every maximal clique C
                x_v ∈ {0, 1}

On chordal graphs the clique constraints are exactly the colorability
condition, so this is the true optimum; on general graphs it is the standard
clique relaxation (a lower bound on the spill cost), which is how the
normalization in Figures 14–15 is defined.

The backend is ``scipy.optimize.milp`` (HiGHS).  When scipy is missing the
caller should use :mod:`repro.alloc.optimal_bb` instead — see
:mod:`repro.alloc.optimal` for the dispatching allocator.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import AllocationError, SolverUnavailableError
from repro.graphs.cliques import Clique
from repro.graphs.graph import Graph, Vertex

try:  # pragma: no cover - import guard exercised only without scipy
    import numpy as _np
    from scipy.optimize import Bounds, LinearConstraint, milp

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


def scipy_available() -> bool:
    """Whether the scipy MILP backend can be used."""
    return _HAVE_SCIPY


def solve_ilp(
    graph: Graph,
    num_registers: int,
    cliques: Sequence[Clique] | None = None,
) -> Tuple[Set[Vertex], float]:
    """Return ``(allocated, allocated_weight)`` from the MILP optimum."""
    if not _HAVE_SCIPY:
        raise SolverUnavailableError("scipy is required for the ILP optimal allocator")
    vertices = graph.vertices()
    if not vertices:
        return set(), 0.0
    if num_registers <= 0:
        return set(), 0.0
    if cliques is None:
        from repro.graphs.cliques import maximal_cliques

        cliques = maximal_cliques(graph)

    index = {v: i for i, v in enumerate(vertices)}
    weights = _np.array([graph.weight(v) for v in vertices], dtype=float)

    # milp minimizes; we maximize allocated weight.
    objective = -weights

    constraints = []
    binding = [c for c in cliques if len(c) > num_registers]
    if binding:
        matrix = _np.zeros((len(binding), len(vertices)))
        for row, clique in enumerate(binding):
            for vertex in clique:
                matrix[row, index[vertex]] = 1.0
        constraints.append(
            LinearConstraint(matrix, lb=-_np.inf, ub=float(num_registers))
        )

    result = milp(
        c=objective,
        constraints=constraints,
        integrality=_np.ones(len(vertices)),
        bounds=Bounds(lb=0.0, ub=1.0),
    )
    if not result.success:
        raise AllocationError(f"MILP solver failed: {result.message}")
    chosen = {vertices[i] for i, value in enumerate(result.x) if value > 0.5}
    return chosen, float(sum(graph.weight(v) for v in chosen))


class IlpOptimalAllocator(Allocator):
    """Optimal allocator backed by scipy's MILP solver."""

    name = "Optimal-ILP"
    version = "1"

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Solve the clique-constrained ILP exactly."""
        allocated, _ = solve_ilp(problem.graph, problem.num_registers, cliques=problem.cliques)
        return self._result(problem, allocated, stats={"backend": "scipy-milp"})


register_allocator("Optimal-ILP", IlpOptimalAllocator)
