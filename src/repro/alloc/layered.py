"""The layered-optimal allocator (paper Algorithm 2, "NL").

The allocator runs at most ``R / step`` rounds; each round solves *optimally*
the allocation problem with ``step`` registers restricted to the variables
not yet allocated, and commits the resulting layer.  With ``step = 1`` (the
paper's setting) the per-round problem is the maximum weighted stable set of
the candidate sub-graph, solved exactly by Frank's algorithm on chordal
graphs.  The final allocation is the union of the layers, which is trivially
``R``-colorable because it is a union of at most ``R`` stable sets.

Overall complexity: ``O(R · (|V| + |E|))``.  Two structural facts make this
bound reachable: an induced subgraph of a chordal graph is chordal, and the
restriction of a perfect elimination order to any vertex subset is still a
PEO of the induced subgraph.  The allocator therefore computes one PEO per
*problem* (cached on :class:`~repro.alloc.problem.AllocationProblem`) and
runs Frank's algorithm over a candidate *mask* each round — no per-round
``Graph.subgraph`` copy, no per-round maximum-cardinality search, no
per-round chordality re-validation.  ``shared_peo=False`` retains the
original materializing path (one fresh subgraph + MCS per round); it is kept
as the behavioural reference for tests and benchmarks.

Note (documented deviation): every layer is a *maximum* weighted stable set
under both paths, but when several maxima tie, which one Frank's algorithm
returns depends on the elimination order (per-round MCS vs restriction of
the shared PEO), and since the greedy layering is not globally optimal,
different tie-breaks can compound into different end-to-end spill costs on
crafted equal-weight instances (cf. the paper's Figure 6 discussion).  On
the shipped corpora — generic real-valued spill costs, where per-layer
maxima are unique — the two paths produce identical results, which the test
suite pins down.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.constraints import ProblemConstraints
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import AllocationError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.stable_set import maximum_weighted_stable_set
from repro.telemetry.tracer import current_tracer


def optimal_layer(
    graph: Graph,
    candidates: Set[Vertex],
    weights: Optional[Dict[Vertex, float]] = None,
    step: int = 1,
    peo: Optional[Sequence[Vertex]] = None,
) -> List[Vertex]:
    """Optimally allocate ``step`` registers among ``candidates``.

    For ``step == 1`` this is Frank's maximum weighted stable set on the
    candidate-induced sub-graph.  When a ``peo`` of the *full* graph is
    supplied, the search runs directly over the candidate mask (its
    restriction to ``candidates`` is a valid PEO of the induced subgraph), so
    the round costs ``O(|V|+|E|)`` with no subgraph copy.  Without ``peo``
    the original path is taken: materialize the subgraph and recompute its
    elimination order from scratch.

    For ``step >= 2`` the layer is computed with the exact optimal allocator
    on the sub-graph (the paper points at a dynamic program; using the exact
    solver keeps the "optimal per layer" contract while remaining polynomial
    in practice for small ``step``).
    """
    if step < 1:
        raise AllocationError(f"layer step must be >= 1, got {step}")
    if not candidates:
        return []
    if step == 1 and peo is not None:
        return maximum_weighted_stable_set(graph, weights=weights, peo=peo, candidates=candidates)
    subgraph = graph.subgraph(candidates)
    if weights is not None:
        layer_weights = {v: weights[v] for v in subgraph.vertices()}
    else:
        layer_weights = None
    if step == 1:
        return maximum_weighted_stable_set(subgraph, weights=layer_weights)
    # Deferred import: optimal.py imports this module's registry helpers.
    from repro.alloc.optimal import solve_optimal_allocation

    if layer_weights is not None:
        for v, w in layer_weights.items():
            subgraph.set_weight(v, w)
    allocated, _ = solve_optimal_allocation(subgraph, step)
    return list(allocated)


# ---------------------------------------------------------------------- #
# constrained layering: shared by NL/BL (one round per register) and by
# FPL/BFPL (same rounds, then fixed-point layer extension)
# ---------------------------------------------------------------------- #
def constrained_setup(
    problem: AllocationProblem,
) -> Tuple[ProblemConstraints, List[str], Dict[Vertex, FrozenSet[str]], Dict[str, FrozenSet[str]]]:
    """Precompute the per-round constraint data of one constrained run.

    Returns ``(constraints, registers, allowed, alias)`` where ``registers``
    is the file truncated to the problem's ``R`` budget, ``allowed`` maps
    each vertex to the registers it may receive within that budget, and
    ``alias`` is the symmetric aliasing closure.
    """
    constraints = problem.constraints
    if constraints is None:
        raise AllocationError("constrained_setup needs a problem with constraints")
    registers = list(constraints.registers[: problem.num_registers])
    allowed = {
        v: frozenset(constraints.allowed(str(v), problem.num_registers))
        for v in problem.graph.vertices()
    }
    return constraints, registers, allowed, constraints.alias_closure()


def register_candidates(
    graph: Graph,
    register: str,
    remaining: Set[Vertex],
    allowed: Dict[Vertex, FrozenSet[str]],
    layers: Dict[str, List[Vertex]],
    alias: Dict[str, FrozenSet[str]],
) -> Set[Vertex]:
    """Vertices that may join ``register``'s layer this round.

    A candidate must still be unallocated, have ``register`` in its allowed
    set, and not interfere with any variable already holding a register that
    *aliases* ``register`` (identical registers are handled by the stable-set
    search itself: one round, one stable set).
    """
    banned: Set[Vertex] = set()
    for other in alias.get(register, frozenset()):
        for member in layers.get(other, []):
            banned.update(graph.neighbors(member))
    return {v for v in remaining if register in allowed[v] and v not in banned}


class LayeredOptimalAllocator(Allocator):
    """Paper Algorithm 2: the plain ("naive") layered-optimal allocator NL.

    Parameters
    ----------
    step:
        Number of registers allocated optimally per layer (the paper
        evaluates ``step = 1``).
    """

    name = "NL"
    version = "1"
    supports_constraints = True

    def __init__(self, step: int = 1, shared_peo: bool = True) -> None:
        if step < 1:
            raise AllocationError(f"step must be >= 1, got {step}")
        self.step = step
        #: reuse one problem-level PEO across rounds (the paper's intended
        #: complexity); ``False`` selects the materializing reference path.
        self.shared_peo = shared_peo

    # ------------------------------------------------------------------ #
    def layer_weights(self, problem: AllocationProblem) -> Optional[Dict[Vertex, float]]:
        """Weights used when searching for a layer.

        The plain allocator searches with the true spill costs; the biased
        variant overrides this hook (see :mod:`repro.alloc.biased`).  Costs
        reported in the result always use the true weights.
        """
        return None

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Run the layered allocation and return the allocated set."""
        if problem.constraints is not None:
            return self._allocate_constrained(problem)
        graph = problem.graph
        candidates: Set[Vertex] = set(graph.vertices())
        allocated: List[Vertex] = []
        weights = self.layer_weights(problem)
        tracer = current_tracer()

        rounds = 0
        budget = problem.num_registers
        peo: Optional[Sequence[Vertex]] = None
        while candidates and rounds * self.step < budget:
            step = min(self.step, budget - rounds * self.step)
            if step == 1 and self.shared_peo and peo is None:
                # One PEO per problem, shared by every round (and, via the
                # problem cache, by every register count of a sweep).
                peo = problem.peo
            if tracer.enabled:
                with tracer.span(
                    "alloc:layer",
                    category="alloc",
                    allocator=self.name,
                    round=rounds,
                    candidates=len(candidates),
                ) as span:
                    layer = optimal_layer(graph, candidates, weights=weights, step=step, peo=peo)
                    span.set(layer_size=len(layer))
                if step == 1:
                    tracer.count("alloc.frank.calls")
                    if peo is not None:
                        tracer.count("alloc.frank.peo_reused")
                    else:
                        tracer.count("alloc.frank.peo_recomputed")
            else:
                layer = optimal_layer(graph, candidates, weights=weights, step=step, peo=peo)
            if not layer:
                break
            allocated.extend(layer)
            candidates.difference_update(layer)
            rounds += 1
        if tracer.enabled:
            tracer.count("alloc.layered.rounds", rounds)

        return self._result(
            problem,
            allocated,
            stats={"layers": rounds, "step": self.step, "candidates_left": len(candidates)},
        )

    def _allocate_constrained(self, problem: AllocationProblem) -> AllocationResult:
        """Constrained layering: one round per concrete register.

        Each of the (at most ``R``) allocatable registers gets one round: a
        maximum weighted stable set searched over the vertices *allowed* to
        hold that register (class/pre-color restrictions, minus neighbors of
        aliasing layers) — the same candidate-mask Frank search as the
        unconstrained rounds, so the dense and set-based kernels stay in
        lockstep.  A layer is sound by construction: it is a stable set
        bound to one register, and aliasing registers never touch
        interfering vertices.  Pre-colored variables are candidates only in
        their register's round (conservative: the round order is the file
        order, not weight-driven).
        """
        if self.step != 1:
            raise AllocationError(
                f"constrained layered allocation requires step=1, got {self.step}"
            )
        graph = problem.graph
        weights = self.layer_weights(problem)
        tracer = current_tracer()
        peo: Optional[Sequence[Vertex]] = problem.peo if self.shared_peo else None
        _constraints, registers, allowed, alias = constrained_setup(problem)

        remaining: Set[Vertex] = set(graph.vertices())
        layers: Dict[str, List[Vertex]] = {}
        rounds = 0
        for register in registers:
            if not remaining:
                break
            candidates = register_candidates(graph, register, remaining, allowed, layers, alias)
            if not candidates:
                continue
            layer = optimal_layer(graph, candidates, weights=weights, step=1, peo=peo)
            if tracer.enabled:
                tracer.count("alloc.frank.calls")
                tracer.count("alloc.frank.peo_reused" if peo is not None else "alloc.frank.peo_recomputed")
            if not layer:
                continue
            layers[register] = list(layer)
            remaining.difference_update(layer)
            rounds += 1
        if tracer.enabled:
            tracer.count("alloc.layered.rounds", rounds)

        allocated = [v for members in layers.values() for v in members]
        return self._result(
            problem,
            allocated,
            stats={
                "layers": rounds,
                "step": self.step,
                "candidates_left": len(remaining),
                "constrained": True,
                "register_layers": {
                    register: sorted(str(v) for v in members)
                    for register, members in layers.items()
                },
            },
        )


register_allocator("NL", LayeredOptimalAllocator)
register_allocator("layered", LayeredOptimalAllocator)


def allocate_layered(
    graph: Graph, num_registers: int, step: int = 1, name: str = ""
) -> AllocationResult:
    """Functional convenience wrapper around :class:`LayeredOptimalAllocator`."""
    problem = AllocationProblem(graph=graph, num_registers=num_registers, name=name)
    return LayeredOptimalAllocator(step=step).allocate(problem)
