"""Chaitin–Briggs optimistic graph coloring (the paper's "GC" baseline).

The classical graph-coloring allocator interleaves spilling with coloring:

* *simplify*: repeatedly remove (push) any node with degree < R;
* when only high-degree nodes remain, pick a spill candidate minimizing
  ``cost(v) / degree(v)`` (the standard Chaitin heuristic) and push it
  optimistically (Briggs);
* *select*: pop nodes and assign the lowest free color; an optimistic node
  with no free color becomes an *actual spill*.

In the decoupled spill-everywhere evaluation of the paper the allocator is
not iterated after spilling (spilled variables simply leave the graph), so
the reported cost is the summed weight of the actually-spilled nodes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.graphs.graph import Vertex


class ChaitinBriggsAllocator(Allocator):
    """Optimistic Chaitin–Briggs coloring with cost/degree spill choice."""

    name = "GC"
    version = "1"

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Run simplify/select and return the colored (allocated) variables."""
        graph = problem.graph
        num_registers = problem.num_registers
        if num_registers == 0:
            return self._result(problem, [], stats={"potential_spills": len(graph)})

        # Mutable adjacency view used by the simplify phase.
        degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
        remaining: Set[Vertex] = set(graph.vertices())
        stack: List[Tuple[Vertex, bool]] = []  # (vertex, pushed_as_spill_candidate)
        potential_spills = 0

        def remove(vertex: Vertex) -> None:
            remaining.discard(vertex)
            for u in graph.neighbors(vertex):
                if u in remaining:
                    degrees[u] -= 1

        while remaining:
            simplifiable = [v for v in remaining if degrees[v] < num_registers]
            if simplifiable:
                # Deterministic order keeps the allocator reproducible.
                vertex = min(simplifiable, key=lambda v: (degrees[v], str(v)))
                stack.append((vertex, False))
                remove(vertex)
                continue
            # Everything has degree >= R: pick the cheapest spill candidate.
            vertex = min(
                remaining,
                key=lambda v: (
                    graph.weight(v) / degrees[v] if degrees[v] > 0 else graph.weight(v),
                    str(v),
                ),
            )
            stack.append((vertex, True))
            potential_spills += 1
            remove(vertex)

        # Select phase: optimistic coloring.
        colors: Dict[Vertex, int] = {}
        spilled: Set[Vertex] = set()
        while stack:
            vertex, _ = stack.pop()
            used = {colors[u] for u in graph.neighbors(vertex) if u in colors}
            color = 0
            while color in used:
                color += 1
            if color < num_registers:
                colors[vertex] = color
            else:
                spilled.add(vertex)

        allocated = [v for v in graph.vertices() if v not in spilled]
        return self._result(
            problem,
            allocated,
            stats={
                "potential_spills": potential_spills,
                "actual_spills": len(spilled),
                "colors_used": (max(colors.values()) + 1) if colors else 0,
            },
        )


register_allocator("GC", ChaitinBriggsAllocator)
register_allocator("chaitin", ChaitinBriggsAllocator)
register_allocator("graph-coloring", ChaitinBriggsAllocator)
