"""Register allocators: the paper's layered family plus all baselines.

The allocators all solve the *spill-everywhere* problem in a decoupled
setting: given a weighted interference graph (vertex weight = spill cost) and
``R`` registers, pick the set of variables to keep in registers so that the
allocated sub-graph is R-colorable and the total weight of spilled variables
is minimal.

Paper algorithms
----------------
================  ==============================================  =================
Name (paper)      Class                                            Module
================  ==============================================  =================
NL                :class:`LayeredOptimalAllocator`                 ``layered``
BL                :class:`BiasedLayeredAllocator`                  ``biased``
FPL               :class:`FixedPointLayeredAllocator`              ``fixed_point``
BFPL              :class:`BiasedFixedPointLayeredAllocator`        ``fixed_point``
LH                :class:`LayeredHeuristicAllocator`               ``layered_heuristic``
GC                :class:`ChaitinBriggsAllocator`                  ``chaitin``
LS                :class:`LinearScanAllocator`                     ``linear_scan``
BLS               :class:`BeladyLinearScanAllocator`               ``linear_scan``
Optimal           :class:`OptimalAllocator`                        ``optimal``
================  ==============================================  =================
"""

from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.alloc.base import Allocator, available_allocators, get_allocator, register_allocator
from repro.alloc.layered import LayeredOptimalAllocator
from repro.alloc.biased import BiasedLayeredAllocator, bias_weights
from repro.alloc.fixed_point import BiasedFixedPointLayeredAllocator, FixedPointLayeredAllocator
from repro.alloc.layered_heuristic import LayeredHeuristicAllocator, cluster_vertices
from repro.alloc.chaitin import ChaitinBriggsAllocator
from repro.alloc.linear_scan import BeladyLinearScanAllocator, LinearScanAllocator
from repro.alloc.optimal import OptimalAllocator
from repro.alloc.optimal_bb import BranchAndBoundAllocator
from repro.alloc.assignment import assign_registers
from repro.alloc.spill_code import insert_spill_code
from repro.alloc.load_store_opt import insert_optimized_spill_code, remove_redundant_reloads
from repro.alloc.verify import check_allocation, is_allocation_feasible

__all__ = [
    "AllocationProblem",
    "AllocationResult",
    "Allocator",
    "available_allocators",
    "get_allocator",
    "register_allocator",
    "LayeredOptimalAllocator",
    "BiasedLayeredAllocator",
    "bias_weights",
    "FixedPointLayeredAllocator",
    "BiasedFixedPointLayeredAllocator",
    "LayeredHeuristicAllocator",
    "cluster_vertices",
    "ChaitinBriggsAllocator",
    "LinearScanAllocator",
    "BeladyLinearScanAllocator",
    "OptimalAllocator",
    "BranchAndBoundAllocator",
    "assign_registers",
    "insert_spill_code",
    "insert_optimized_spill_code",
    "remove_redundant_reloads",
    "check_allocation",
    "is_allocation_feasible",
]
