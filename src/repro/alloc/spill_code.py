"""Spill-code insertion (paper Section 4.3).

A spilled variable does not vanish: in the spill-everywhere model it pays one
store after its definition and one load before each use, and the reloaded
values become short-lived temporaries that the assignment still has to fit.
This pass rewrites an IR function accordingly, so downstream users can
actually generate code from an allocation (and so tests can confirm that the
rewritten function's register pressure drops to the promised level).

For each spilled register ``%v``:

* a stack slot ``slot.v`` is allocated (modelled as a constant address);
* every definition ``%v = ...`` is followed by ``store slot.v, %v``;
* every use is preceded by ``%v.reloadN = load slot.v`` and rewritten to use
  the fresh reload temporary;
* φ-operands are reloaded at the end of the corresponding predecessor block.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode, make_load, make_store
from repro.ir.values import Constant, VirtualRegister

#: first stack-slot address handed out by :func:`insert_spill_code`.  Program
#: memory traffic below this address can never alias spill slots, which is
#: what lets the correctness oracle diff visible memory (addresses below the
#: base) while ignoring the slots, and lets the interpreter attribute
#: high-address accesses to spill code in its diagnostics.  A function that
#: itself addresses memory at or above the base gets its slots placed above
#: its highest *constant* address (see :func:`insert_spill_code`), so slots
#: never collide with statically-addressed program traffic; register-computed
#: addresses that land in the slot range at runtime remain the caller's
#: responsibility (the oracle's generator masks them well below the base),
#: and high program addresses sit outside the oracle's visible window on
#: *both* sides of a diff.
SPILL_SLOT_BASE = 1000


def _slot_base(function: Function) -> int:
    """First safe slot address: above every constant address the program uses."""
    highest = -1
    for instruction in function.instructions():
        if instruction.opcode in (Opcode.LOAD, Opcode.STORE) and instruction.uses:
            address = instruction.uses[0]
            if isinstance(address, Constant) and isinstance(address.value, int):
                highest = max(highest, address.value)
    return max(SPILL_SLOT_BASE, highest + 1)


def _clone(function: Function) -> Function:
    """Deep copy of a function (kept as an alias of :meth:`Function.clone`)."""
    return function.clone()


def insert_spill_code(
    function: Function, spilled: Iterable[str]
) -> Tuple[Function, Dict[str, int]]:
    """Return a copy of ``function`` with spill code for ``spilled`` registers.

    ``spilled`` contains register *names* (matching interference-graph
    vertices).  Returns the rewritten function and a statistics dict with the
    number of inserted ``loads`` and ``stores``.
    """
    spilled_names: Set[str] = set(spilled)
    result = _clone(function)
    base = _slot_base(function)
    slot_address: Dict[str, Constant] = {
        name: Constant(base + index) for index, name in enumerate(sorted(spilled_names))
    }
    stats = {"loads": 0, "stores": 0}
    reload_counter = 0

    for block in result:
        new_instructions: List[Instruction] = []
        for instruction in block.instructions:
            # Reload spilled operands right before the use.
            replacements: Dict[VirtualRegister, VirtualRegister] = {}
            for reg in instruction.used_registers():
                if reg.name in spilled_names and reg not in replacements:
                    reload = VirtualRegister(f"{reg.name}.reload{reload_counter}")
                    reload_counter += 1
                    new_instructions.append(make_load(reload, slot_address[reg.name]))
                    stats["loads"] += 1
                    replacements[reg] = reload
            for old, new in replacements.items():
                instruction.replace_use(old, new)
            new_instructions.append(instruction)
            # Store spilled definitions right after the definition.
            for reg in instruction.defined_registers():
                if reg.name in spilled_names:
                    new_instructions.append(make_store(slot_address[reg.name], reg))
                    stats["stores"] += 1
        # Keep the terminator last: a store inserted after a terminator must
        # move before it.
        if len(new_instructions) >= 2 and not new_instructions[-1].is_terminator:
            for position in range(len(new_instructions) - 1, -1, -1):
                if new_instructions[position].is_terminator:
                    terminator = new_instructions.pop(position)
                    new_instructions.append(terminator)
                    break
        block.instructions = new_instructions

        # φ results that are spilled get stored at the top of the block.
        stores_for_phis: List[Instruction] = []
        for phi in block.phis:
            if phi.target.name in spilled_names:
                stores_for_phis.append(make_store(slot_address[phi.target.name], phi.target))
                stats["stores"] += 1
        if stores_for_phis:
            block.instructions = stores_for_phis + block.instructions

    # Parameters that are spilled are stored once on entry.
    entry = result.entry
    parameter_stores: List[Instruction] = []
    for param in result.parameters:
        if param.name in spilled_names:
            parameter_stores.append(make_store(slot_address[param.name], param))
            stats["stores"] += 1
    if parameter_stores:
        entry.instructions = parameter_stores + entry.instructions

    return result, stats
