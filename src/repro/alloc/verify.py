"""Validation of allocation results.

An allocation is *feasible* when the sub-graph induced by the allocated
variables can be colored with the available registers.  The check used here
mirrors the structure of the allocators:

* on chordal graphs feasibility is exact: the clique number of the induced
  sub-graph (computed via a perfect elimination order) must not exceed ``R``;
* on general graphs exact verification is NP-hard, so the check combines the
  necessary maximal-clique condition with a sufficient greedy-coloring
  attempt and reports which one decided.

``check_allocation`` additionally validates the bookkeeping of a result
(partition of the variables, correctly summed spill cost), and
``check_assignment`` validates a *concrete* register assignment against both
the interference graph and the target's register file — the register count
and the register names the target actually provides (ST231 / ARMv7 / JVM),
not just interference-freedom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import InvalidAllocationError
from repro.graphs.chordal import is_chordal
from repro.graphs.cliques import maximal_cliques
from repro.graphs.coloring import chromatic_number_chordal, greedy_coloring, is_valid_coloring
from repro.graphs.graph import Graph, Vertex
from repro.targets.machine import TargetMachine


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check."""

    feasible: bool
    exact: bool
    reason: str


def is_allocation_feasible(graph: Graph, allocated: Iterable[Vertex], num_registers: int) -> FeasibilityReport:
    """Check whether ``allocated`` fits in ``num_registers`` registers."""
    induced = graph.subgraph(allocated)
    if len(induced) == 0:
        return FeasibilityReport(True, True, "empty allocation")
    if num_registers <= 0:
        return FeasibilityReport(False, True, "no registers available")

    if is_chordal(induced):
        needed = chromatic_number_chordal(induced)
        feasible = needed <= num_registers
        return FeasibilityReport(
            feasible,
            True,
            f"chordal induced sub-graph needs {needed} colors for {num_registers} registers",
        )

    # Necessary condition: no clique larger than R.
    omega = max((len(c) for c in maximal_cliques(induced)), default=0)
    if omega > num_registers:
        return FeasibilityReport(False, True, f"allocated clique of size {omega} exceeds R={num_registers}")
    # Sufficient check: a greedy coloring that fits proves feasibility.
    coloring = greedy_coloring(induced)
    if is_valid_coloring(induced, coloring) and max(coloring.values()) + 1 <= num_registers:
        return FeasibilityReport(True, True, "greedy coloring fits in the register file")
    return FeasibilityReport(
        True,
        False,
        "clique bound satisfied but greedy coloring exceeded R; feasibility undecided (clique relaxation)",
    )


def check_assignment(
    problem: AllocationProblem,
    result: AllocationResult,
    assignment: Dict[Vertex, str],
    target: Optional[TargetMachine] = None,
) -> None:
    """Validate a concrete register assignment against problem and target.

    Raises :class:`InvalidAllocationError` when:

    * an allocated variable is missing from the assignment, or a spilled
      variable appears in it;
    * two interfering variables share a register;
    * the assignment uses more distinct registers than ``R``;
    * with a ``target``, a register name is outside the target's register
      file (the names :meth:`TargetMachine.register_names` provides for the
      problem's register count).
    """
    allocated = set(result.allocated)
    missing = sorted(str(v) for v in allocated if v not in assignment)
    if missing:
        raise InvalidAllocationError(
            f"allocated variables missing from the register assignment: {missing}"
        )
    spilled_assigned = sorted(str(v) for v in result.spilled if v in assignment)
    if spilled_assigned:
        raise InvalidAllocationError(
            f"spilled variables must not hold a register, but got one: {spilled_assigned}"
        )
    graph = problem.graph
    for vertex in allocated:
        for neighbor in graph.neighbors(vertex):
            if neighbor in allocated and assignment[vertex] == assignment[neighbor] and str(vertex) < str(neighbor):
                raise InvalidAllocationError(
                    f"interfering variables {vertex} and {neighbor} share register "
                    f"{assignment[vertex]!r}"
                )
    used = {assignment[v] for v in allocated}
    if len(used) > problem.num_registers:
        raise InvalidAllocationError(
            f"assignment uses {len(used)} distinct registers for R={problem.num_registers}"
        )
    if target is not None:
        # The register file the target exposes for this problem: its own
        # names, truncated to the problem's register count when the sweep
        # restricts R below the physical file (the paper's R sweeps).
        budget = min(problem.num_registers, target.num_registers)
        valid = set(list(target.register_names().values())[:budget])
        foreign = sorted(used - valid)
        if foreign:
            raise InvalidAllocationError(
                f"assignment uses register(s) {foreign} outside target "
                f"{target.name!r}'s file of {budget} allocatable registers"
            )


def check_allocation(problem: AllocationProblem, result: AllocationResult, strict: bool = True) -> FeasibilityReport:
    """Validate a result against its problem.

    Raises :class:`InvalidAllocationError` when the result's bookkeeping is
    inconsistent or (with ``strict=True``) when the allocation is provably
    infeasible.
    """
    vertices = set(problem.graph.vertices())
    if set(result.allocated) | set(result.spilled) != vertices:
        raise InvalidAllocationError("allocated ∪ spilled does not cover all variables")
    if set(result.allocated) & set(result.spilled):
        raise InvalidAllocationError("allocated and spilled sets overlap")
    expected_cost = problem.spill_cost_of(list(result.spilled))
    if abs(expected_cost - result.spill_cost) > 1e-6 * max(1.0, expected_cost):
        raise InvalidAllocationError(
            f"spill cost mismatch: result says {result.spill_cost}, recomputed {expected_cost}"
        )
    report = is_allocation_feasible(problem.graph, result.allocated, result.num_registers)
    if strict and report.exact and not report.feasible:
        raise InvalidAllocationError(f"infeasible allocation from {result.allocator}: {report.reason}")
    return report
