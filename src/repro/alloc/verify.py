"""Validation of allocation results.

An allocation is *feasible* when the sub-graph induced by the allocated
variables can be colored with the available registers.  The check used here
mirrors the structure of the allocators:

* on chordal graphs feasibility is exact: the clique number of the induced
  sub-graph (computed via a perfect elimination order) must not exceed ``R``;
* on general graphs exact verification is NP-hard, so the check combines the
  necessary maximal-clique condition with a sufficient greedy-coloring
  attempt and reports which one decided.

``check_allocation`` additionally validates the bookkeeping of a result
(partition of the variables, correctly summed spill cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import InvalidAllocationError
from repro.graphs.chordal import is_chordal
from repro.graphs.cliques import maximal_cliques
from repro.graphs.coloring import chromatic_number_chordal, greedy_coloring, is_valid_coloring
from repro.graphs.graph import Graph, Vertex


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check."""

    feasible: bool
    exact: bool
    reason: str


def is_allocation_feasible(graph: Graph, allocated: Iterable[Vertex], num_registers: int) -> FeasibilityReport:
    """Check whether ``allocated`` fits in ``num_registers`` registers."""
    induced = graph.subgraph(allocated)
    if len(induced) == 0:
        return FeasibilityReport(True, True, "empty allocation")
    if num_registers <= 0:
        return FeasibilityReport(False, True, "no registers available")

    if is_chordal(induced):
        needed = chromatic_number_chordal(induced)
        feasible = needed <= num_registers
        return FeasibilityReport(
            feasible,
            True,
            f"chordal induced sub-graph needs {needed} colors for {num_registers} registers",
        )

    # Necessary condition: no clique larger than R.
    omega = max((len(c) for c in maximal_cliques(induced)), default=0)
    if omega > num_registers:
        return FeasibilityReport(False, True, f"allocated clique of size {omega} exceeds R={num_registers}")
    # Sufficient check: a greedy coloring that fits proves feasibility.
    coloring = greedy_coloring(induced)
    if is_valid_coloring(induced, coloring) and max(coloring.values()) + 1 <= num_registers:
        return FeasibilityReport(True, True, "greedy coloring fits in the register file")
    return FeasibilityReport(
        True,
        False,
        "clique bound satisfied but greedy coloring exceeded R; feasibility undecided (clique relaxation)",
    )


def check_allocation(problem: AllocationProblem, result: AllocationResult, strict: bool = True) -> FeasibilityReport:
    """Validate a result against its problem.

    Raises :class:`InvalidAllocationError` when the result's bookkeeping is
    inconsistent or (with ``strict=True``) when the allocation is provably
    infeasible.
    """
    vertices = set(problem.graph.vertices())
    if set(result.allocated) | set(result.spilled) != vertices:
        raise InvalidAllocationError("allocated ∪ spilled does not cover all variables")
    if set(result.allocated) & set(result.spilled):
        raise InvalidAllocationError("allocated and spilled sets overlap")
    expected_cost = problem.spill_cost_of(list(result.spilled))
    if abs(expected_cost - result.spill_cost) > 1e-6 * max(1.0, expected_cost):
        raise InvalidAllocationError(
            f"spill cost mismatch: result says {result.spill_cost}, recomputed {expected_cost}"
        )
    report = is_allocation_feasible(problem.graph, result.allocated, result.num_registers)
    if strict and report.exact and not report.feasible:
        raise InvalidAllocationError(f"infeasible allocation from {result.allocator}: {report.reason}")
    return report
