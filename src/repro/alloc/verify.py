"""Validation of allocation results.

An allocation is *feasible* when the sub-graph induced by the allocated
variables can be colored with the available registers.  The check used here
mirrors the structure of the allocators:

* on chordal graphs feasibility is exact: the clique number of the induced
  sub-graph (computed via a perfect elimination order) must not exceed ``R``;
* on general graphs exact verification is NP-hard, so the check combines the
  necessary maximal-clique condition with a sufficient greedy-coloring
  attempt and reports which one decided.

``check_allocation`` additionally validates the bookkeeping of a result
(partition of the variables, correctly summed spill cost), and
``check_assignment`` validates a *concrete* register assignment against both
the interference graph and the target's register file — the register count
and the register names the target actually provides (ST231 / ARMv7 / JVM),
not just interference-freedom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import InvalidAllocationError
from repro.graphs.chordal import is_chordal
from repro.graphs.cliques import maximal_cliques
from repro.graphs.coloring import chromatic_number_chordal, greedy_coloring, is_valid_coloring
from repro.graphs.graph import Graph, Vertex
from repro.targets.machine import TargetMachine


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check."""

    feasible: bool
    exact: bool
    reason: str


def is_allocation_feasible(graph: Graph, allocated: Iterable[Vertex], num_registers: int) -> FeasibilityReport:
    """Check whether ``allocated`` fits in ``num_registers`` registers."""
    induced = graph.subgraph(allocated)
    if len(induced) == 0:
        return FeasibilityReport(True, True, "empty allocation")
    if num_registers <= 0:
        return FeasibilityReport(False, True, "no registers available")

    if is_chordal(induced):
        needed = chromatic_number_chordal(induced)
        feasible = needed <= num_registers
        return FeasibilityReport(
            feasible,
            True,
            f"chordal induced sub-graph needs {needed} colors for {num_registers} registers",
        )

    # Necessary condition: no clique larger than R.
    omega = max((len(c) for c in maximal_cliques(induced)), default=0)
    if omega > num_registers:
        return FeasibilityReport(False, True, f"allocated clique of size {omega} exceeds R={num_registers}")
    # Sufficient check: a greedy coloring that fits proves feasibility.
    coloring = greedy_coloring(induced)
    if is_valid_coloring(induced, coloring) and max(coloring.values()) + 1 <= num_registers:
        return FeasibilityReport(True, True, "greedy coloring fits in the register file")
    return FeasibilityReport(
        True,
        False,
        "clique bound satisfied but greedy coloring exceeded R; feasibility undecided (clique relaxation)",
    )


def check_assignment(
    problem: AllocationProblem,
    result: AllocationResult,
    assignment: Dict[Vertex, str],
    target: Optional[TargetMachine] = None,
) -> None:
    """Validate a concrete register assignment against problem and target.

    .. deprecated:: this is a shim over
       :func:`repro.check.assignment_diagnostics` (codes
       ``ALLOC005``–``ALLOC008``), kept for its historical
       raise-on-first-violation contract; new code should consume the typed
       diagnostics directly.

    Raises :class:`InvalidAllocationError` when:

    * an allocated variable is missing from the assignment, or a spilled
      variable appears in it;
    * two interfering variables share a register;
    * the assignment uses more distinct registers than ``R``;
    * with a ``target``, a register name is outside the target's register
      file (the names :meth:`TargetMachine.register_names` provides for the
      problem's register count).
    """
    from repro.check.allocation import assignment_diagnostics

    for diagnostic in assignment_diagnostics(problem, result, assignment, target=target):
        if diagnostic.is_error:
            raise InvalidAllocationError(diagnostic.message)


def check_allocation(problem: AllocationProblem, result: AllocationResult, strict: bool = True) -> FeasibilityReport:
    """Validate a result against its problem.

    .. deprecated:: this is a shim over
       :func:`repro.check.allocation_diagnostics` (codes
       ``ALLOC001``–``ALLOC004``), kept for its historical
       raise-on-first-violation contract; new code should consume the typed
       diagnostics directly.

    Raises :class:`InvalidAllocationError` when the result's bookkeeping is
    inconsistent or (with ``strict=True``) when the allocation is provably
    infeasible.
    """
    from repro.check.allocation import allocation_report_and_diagnostics

    report, diagnostics = allocation_report_and_diagnostics(
        problem, result, strict=strict
    )
    for diagnostic in diagnostics:
        if diagnostic.is_error:
            raise InvalidAllocationError(diagnostic.message)
    assert report is not None  # bookkeeping errors raised above
    return report
