"""Intra-block load/store optimization of spill code (paper Section 2.1).

The spill-everywhere model pays one load before *every* use of a spilled
variable.  The paper notes that "in practice, if the variable can stay in a
register between two consecutive uses, a load is saved", and argues that a
spill-everywhere solution can serve as the oracle for a finer-grained
load/store optimization.  This pass implements the practical half of that
observation:

* spill code is inserted for the chosen spill set
  (:func:`repro.alloc.spill_code.insert_spill_code`);
* inside each basic block, a reload from a stack slot whose value is already
  available in a register (from an earlier reload of the same slot, or from
  the store that filled the slot) is removed, and its uses are redirected to
  the register that still holds the value.

The redundancy analysis is local (per block) and therefore always safe: no
path can invalidate the availability between the defining access and the
reuse inside the same block (our stack slots are only written by the spill
stores themselves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.alloc.spill_code import insert_spill_code
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Constant, VirtualRegister


@dataclass(frozen=True)
class LoadStoreStats:
    """Bookkeeping of the optimization."""

    stores: int
    loads_before: int
    loads_after: int

    @property
    def loads_saved(self) -> int:
        """Number of reload instructions removed by the local optimization."""
        return self.loads_before - self.loads_after


def remove_redundant_reloads(function: Function) -> Tuple[Function, int]:
    """Remove locally redundant reloads from ``function`` (returns a copy).

    A ``load`` whose address is a constant stack slot is redundant when the
    slot's current value is already held in a register within the same block
    — either the register stored to the slot earlier in the block, or the
    destination of an earlier load of the same slot.  Returns the rewritten
    function and the number of loads removed.
    """
    from repro.alloc.spill_code import _clone  # same deep-copy helper

    result = _clone(function)
    removed = 0
    for block in result:
        available: Dict[Constant, VirtualRegister] = {}
        replacements: Dict[VirtualRegister, VirtualRegister] = {}
        new_instructions: List[Instruction] = []
        for instruction in block.instructions:
            # Rewrite uses through the replacement map built so far.
            for old, new in replacements.items():
                instruction.replace_use(old, new)

            if instruction.opcode is Opcode.LOAD and isinstance(instruction.uses[0], Constant):
                slot = instruction.uses[0]
                if slot in available:
                    replacements[instruction.defs[0]] = available[slot]
                    removed += 1
                    continue  # drop the redundant reload
                available[slot] = instruction.defs[0]
            elif instruction.opcode is Opcode.STORE and isinstance(instruction.uses[0], Constant):
                slot, value = instruction.uses[0], instruction.uses[1]
                if isinstance(value, VirtualRegister):
                    available[slot] = value
                else:
                    available.pop(slot, None)
            else:
                # A redefinition of a register that was tracked as holding a
                # slot value invalidates that availability.
                for register in instruction.defined_registers():
                    stale = [slot for slot, holder in available.items() if holder == register]
                    for slot in stale:
                        del available[slot]
            new_instructions.append(instruction)
        block.instructions = new_instructions

        # φ operands may also reference replaced reload registers.
        for phi in block.phis:
            for old, new in replacements.items():
                phi.replace_use(old, new)
    return result, removed


def insert_optimized_spill_code(
    function: Function, spilled: Iterable[str]
) -> Tuple[Function, LoadStoreStats]:
    """Insert spill code for ``spilled`` and clean up redundant reloads.

    Returns the rewritten function plus statistics comparing the naive
    spill-everywhere lowering with the optimized one.
    """
    naive, naive_stats = insert_spill_code(function, spilled)
    optimized, removed = remove_redundant_reloads(naive)
    stats = LoadStoreStats(
        stores=naive_stats["stores"],
        loads_before=naive_stats["loads"],
        loads_after=naive_stats["loads"] - removed,
    )
    return optimized, stats
