"""Intra-block load/store optimization of spill code (paper Section 2.1).

The spill-everywhere model pays one load before *every* use of a spilled
variable.  The paper notes that "in practice, if the variable can stay in a
register between two consecutive uses, a load is saved", and argues that a
spill-everywhere solution can serve as the oracle for a finer-grained
load/store optimization.  This pass implements the practical half of that
observation:

* spill code is inserted for the chosen spill set
  (:func:`repro.alloc.spill_code.insert_spill_code`);
* inside each basic block, a reload from a stack slot whose value is already
  available in a register (from an earlier reload of the same slot, or from
  the store that filled the slot) is removed, and its uses are redirected to
  the register that still holds the value.

Correctness of the redundancy analysis (checked end-to-end by the
differential oracle in :mod:`repro.oracle`):

* availability is strictly intra-block — it is never carried across a basic
  block boundary, and a reload whose destination is referenced by a φ or by
  another block is never removed;
* a store through a *register* address may alias any tracked slot, so it
  invalidates all availability (constant-address stores only touch their own
  slot — ``call`` never touches memory in this IR, see
  :mod:`repro.ir.interpreter`);
* a redefinition of a register invalidates every slot it was holding,
  including redefinitions performed by loads and stores themselves
  (non-SSA input reuses destination registers);
* a reload is only removed when the replacement register provably still
  holds the slot's value at every rewritten use: the reload's destination
  has a single definition, all its uses sit later in the same block, and the
  holding register is not redefined before the last of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.alloc.spill_code import insert_spill_code
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Constant, VirtualRegister


@dataclass(frozen=True)
class LoadStoreStats:
    """Bookkeeping of the optimization."""

    stores: int
    loads_before: int
    loads_after: int

    @property
    def loads_saved(self) -> int:
        """Number of reload instructions removed by the local optimization."""
        return self.loads_before - self.loads_after


def _use_index(function: Function) -> Tuple[Dict[VirtualRegister, int], Set[VirtualRegister]]:
    """Count definitions and find registers used by φs or across blocks.

    Returns ``(def_counts, unsafe)`` where ``unsafe`` holds every register
    referenced by any φ — those uses happen on a CFG edge, outside the
    straight-line region the availability analysis reasons about.
    """
    def_counts: Dict[VirtualRegister, int] = {}
    for param in function.parameters:
        def_counts[param] = def_counts.get(param, 0) + 1
    unsafe: Set[VirtualRegister] = set()
    for block in function:
        for phi in block.phis:
            def_counts[phi.target] = def_counts.get(phi.target, 0) + 1
            unsafe.update(phi.used_registers())
        for instruction in block.instructions:
            for reg in instruction.defined_registers():
                def_counts[reg] = def_counts.get(reg, 0) + 1
    return def_counts, unsafe


def _block_uses(instructions: List[Instruction]) -> Dict[VirtualRegister, List[int]]:
    """Positions of every register use within one block's instruction list."""
    uses: Dict[VirtualRegister, List[int]] = {}
    for position, instruction in enumerate(instructions):
        for reg in instruction.used_registers():
            uses.setdefault(reg, []).append(position)
    return uses


def remove_redundant_reloads(function: Function) -> Tuple[Function, int]:
    """Remove locally redundant reloads from ``function`` (returns a copy).

    A ``load`` whose address is a constant stack slot is redundant when the
    slot's current value is already held in a register within the same block
    — either the register stored to the slot earlier in the block, or the
    destination of an earlier load of the same slot.  Returns the rewritten
    function and the number of loads removed.

    Removal is conservative: see the module docstring for the exact safety
    conditions (single definition, same-block uses only, stable holder).
    """
    result = function.clone()
    def_counts, phi_used = _use_index(result)

    # Registers used in more than one block (or used by φs) cannot have their
    # defining reload removed: the rewrite is purely intra-block.
    use_blocks: Dict[VirtualRegister, Set[str]] = {}
    for block in result:
        for instruction in block.instructions:
            for reg in instruction.used_registers():
                use_blocks.setdefault(reg, set()).add(block.label)

    removed = 0
    for block in result:
        instructions = block.instructions
        uses_here = _block_uses(instructions)
        available: Dict[Constant, VirtualRegister] = {}
        replacements: Dict[VirtualRegister, VirtualRegister] = {}
        new_instructions: List[Instruction] = []

        def invalidate_holders(registers: Iterable[VirtualRegister]) -> None:
            redefined = set(registers)
            stale = [slot for slot, holder in available.items() if holder in redefined]
            for slot in stale:
                del available[slot]

        def holder_stable(holder: VirtualRegister, start: int, stop: int) -> bool:
            """Whether ``holder`` has no definition in positions (start, stop]."""
            for position in range(start + 1, stop + 1):
                if holder in instructions[position].defined_registers():
                    return False
            return True

        for index, instruction in enumerate(instructions):
            # Rewrite uses through the replacement map built so far.
            for old, new in replacements.items():
                instruction.replace_use(old, new)

            opcode = instruction.opcode
            if opcode is Opcode.LOAD and isinstance(instruction.uses[0], Constant):
                slot = instruction.uses[0]
                destination = instruction.defs[0]
                holder = available.get(slot)
                if holder is not None and _removable(
                    destination,
                    holder,
                    index,
                    uses_here,
                    use_blocks,
                    block.label,
                    def_counts,
                    phi_used,
                    holder_stable,
                ):
                    replacements[destination] = holder
                    removed += 1
                    continue  # drop the redundant reload
                # The load's destination is (re)defined here: any slot it was
                # holding is stale from this point on.
                invalidate_holders([destination])
                available[slot] = destination
            elif opcode is Opcode.STORE:
                address = instruction.uses[0]
                if isinstance(address, Constant):
                    value = instruction.uses[1]
                    if isinstance(value, VirtualRegister):
                        available[address] = value
                    else:
                        available.pop(address, None)
                else:
                    # A store through a register may alias any slot.
                    available.clear()
            else:
                # A redefinition of a register that was tracked as holding a
                # slot value invalidates that availability.  Calls are pure in
                # this IR (the interpreter models them as a deterministic
                # function of the arguments) so they never clobber memory.
                invalidate_holders(instruction.defined_registers())
            new_instructions.append(instruction)
        block.instructions = new_instructions
    return result, removed


def _removable(
    destination: VirtualRegister,
    holder: VirtualRegister,
    index: int,
    uses_here: Dict[VirtualRegister, List[int]],
    use_blocks: Dict[VirtualRegister, Set[str]],
    label: str,
    def_counts: Dict[VirtualRegister, int],
    phi_used: Set[VirtualRegister],
    holder_stable,
) -> bool:
    """Safety check for removing one reload (see module docstring)."""
    if def_counts.get(destination, 0) != 1:
        return False  # another definition exists: later uses may mean *it*
    if destination in phi_used:
        return False  # φ uses happen on CFG edges, outside this block
    if use_blocks.get(destination, set()) - {label}:
        return False  # used in another block: availability must not cross
    positions = uses_here.get(destination, [])
    if any(position <= index for position in positions):
        return False  # a use textually before the reload: broken input, keep
    if not positions:
        return True  # dead reload: removing it is trivially safe
    return holder_stable(holder, index, max(positions))


def insert_optimized_spill_code(
    function: Function, spilled: Iterable[str]
) -> Tuple[Function, LoadStoreStats]:
    """Insert spill code for ``spilled`` and clean up redundant reloads.

    Returns the rewritten function plus statistics comparing the naive
    spill-everywhere lowering with the optimized one.
    """
    naive, naive_stats = insert_spill_code(function, spilled)
    optimized, removed = remove_redundant_reloads(naive)
    stats = LoadStoreStats(
        stores=naive_stats["stores"],
        loads_before=naive_stats["loads"],
        loads_after=naive_stats["loads"] - removed,
    )
    return optimized, stats
