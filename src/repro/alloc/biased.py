"""Weight biasing (paper Section 4.1, allocator "BL").

A chordal graph can have several maximum weighted stable sets of equal
weight; which one is chosen affects the later layers (Figure 6 of the paper).
The paper's remedy is to bias the search weight of each vertex by its degree:

    ``w'(v) = w(v) · |V| + |adj(v)|``

so that, among stable sets of equal (true) weight, the one whose vertices
carry more interference edges is preferred — allocating it removes more
constraints from the remaining candidates.  Only the *search* uses the biased
weights; spill costs are always accounted with the true weights.

Note (documented deviation): for stable sets containing several vertices the
degree terms add up and may exceed ``|V|``, so the bias can in rare cases
override a true-weight difference of less than ``(Σ degrees) / |V|``.  This is
inherent to the paper's formula; the ablation benchmark quantifies it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.alloc.base import register_allocator
from repro.alloc.layered import LayeredOptimalAllocator
from repro.alloc.problem import AllocationProblem
from repro.graphs.graph import Graph, Vertex


def bias_weights(graph: Graph, weights: Optional[Dict[Vertex, float]] = None) -> Dict[Vertex, float]:
    """Return the biased weight map ``w'(v) = w(v)·|V| + deg(v)``."""
    if weights is None:
        weights = graph.weights()
    scale = float(len(graph))
    return {v: weights[v] * scale + graph.degree(v) for v in graph.vertices()}


class BiasedLayeredAllocator(LayeredOptimalAllocator):
    """Layered-optimal allocation searching with degree-biased weights (BL)."""

    name = "BL"
    version = "1"

    def layer_weights(self, problem: AllocationProblem) -> Optional[Dict[Vertex, float]]:
        """Search each layer with the biased weights (cached per problem).

        The bias only depends on the graph, not on ``R``, so register-count
        sweeps share one computation via the problem's derived-data cache.
        """
        return problem.derived("bias_weights", lambda: bias_weights(problem.graph))


register_allocator("BL", BiasedLayeredAllocator)
register_allocator("biased", BiasedLayeredAllocator)
