"""The "Optimal" allocator: exact spill-everywhere optimum with backend dispatch.

Uses the scipy MILP backend when available (fast, scales to the corpus sizes
of the experiment harness) and falls back to the in-house branch-and-bound
solver otherwise.  Both solve the same maximal-clique formulation, so the
results are identical; the test suite cross-checks them on small instances.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.optimal_bb import solve_branch_and_bound
from repro.alloc.optimal_ilp import scipy_available, solve_ilp
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.graphs.graph import Graph, Vertex


def solve_optimal_allocation(
    graph: Graph, num_registers: int, cliques=None, prefer_ilp: bool = True
) -> Tuple[Set[Vertex], float]:
    """Return ``(allocated, allocated_weight)`` using the best available backend.

    The branch-and-bound fallback runs with the historical 2M-node budget:
    "Optimal" is the sweep/figure baseline and should decide everything it
    always could, while the standalone Optimal-BB allocator keeps the small
    default that makes fuzz campaigns affordable.
    """
    if prefer_ilp and scipy_available():
        return solve_ilp(graph, num_registers, cliques=cliques)
    return solve_branch_and_bound(graph, num_registers, cliques=cliques, max_nodes=2_000_000)


class OptimalAllocator(Allocator):
    """Exact optimal spill-everywhere allocation (the paper's "Optimal")."""

    name = "Optimal"
    version = "1"

    def __init__(self, prefer_ilp: bool = True) -> None:
        self.prefer_ilp = prefer_ilp

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Solve the instance exactly with the preferred backend."""
        allocated, _ = solve_optimal_allocation(
            problem.graph,
            problem.num_registers,
            cliques=problem.cliques,
            prefer_ilp=self.prefer_ilp,
        )
        backend = "scipy-milp" if (self.prefer_ilp and scipy_available()) else "branch-and-bound"
        return self._result(problem, allocated, stats={"backend": backend})


register_allocator("Optimal", OptimalAllocator)
register_allocator("optimal", OptimalAllocator)
