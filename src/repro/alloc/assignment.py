"""Register assignment (coloring) of an allocation.

In the decoupled approach the assignment phase runs after allocation: the
allocated variables are mapped to concrete registers.  On chordal (SSA)
graphs this is the easy part the paper leverages — a greedy scan of the
reverse perfect elimination order ("tree-scan") colors the graph with exactly
its clique number — and on general graphs a greedy coloring is attempted.

Constrained problems (:class:`~repro.alloc.constraints.ProblemConstraints`)
take a different path, :func:`assign_constrained`: constrained allocators
already bind every layer to a concrete register and publish the binding in
``result.stats["register_layers"]``, which the assignment stage replays
directly; without that hint a greedy list-coloring over each variable's
allowed registers (aliasing-aware) is attempted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.alloc.constraints import ProblemConstraints
from repro.errors import AllocationError
from repro.graphs.chordal import is_chordal, maximum_cardinality_search
from repro.graphs.coloring import chordal_coloring, greedy_coloring, is_valid_coloring
from repro.graphs.graph import Graph, Vertex


def assign_registers(
    graph: Graph,
    allocated: Iterable[Vertex],
    num_registers: int,
    register_names: Optional[Dict[int, str]] = None,
) -> Dict[Vertex, str]:
    """Map each allocated variable to a register name.

    ``register_names`` optionally maps color indices to target register names
    (e.g. ``{0: "r0", 1: "r1"}``); indices are used when omitted.  When the
    name map is *smaller* than ``num_registers`` — a target whose reserved
    registers shrink the allocatable file below the problem's ``R`` — the
    names are the binding budget: a coloring that fits ``R`` but not the
    available names raises too.

    Raises :class:`AllocationError` if the allocation cannot be colored with
    ``num_registers`` registers — which, for results produced by the library's
    allocators, indicates a bug upstream.
    """
    induced = graph.subgraph(allocated)
    if len(induced) == 0:
        return {}

    if is_chordal(induced):
        coloring = chordal_coloring(induced)
    else:
        coloring = greedy_coloring(induced)
        if not is_valid_coloring(induced, coloring):
            raise AllocationError("internal error: greedy coloring produced an invalid coloring")

    colors_used = max(coloring.values()) + 1
    if colors_used > num_registers:
        raise AllocationError(
            f"allocation needs {colors_used} registers but only {num_registers} are available"
        )
    if register_names is not None and colors_used > len(register_names):
        raise AllocationError(
            f"allocation needs {colors_used} registers but the target provides "
            f"only {len(register_names)} allocatable names"
        )

    def register_name(color: int) -> str:
        if register_names is not None:
            return register_names[color]
        return f"r{color}"

    return {vertex: register_name(color) for vertex, color in coloring.items()}


def assign_constrained(
    graph: Graph,
    allocated: Iterable[Vertex],
    constraints: ProblemConstraints,
    num_registers: int,
    hint: Optional[Mapping[str, Sequence[str]]] = None,
) -> Dict[Vertex, str]:
    """Map allocated variables to registers under file constraints.

    ``hint`` is a ``register -> [variable names]`` binding (the
    ``register_layers`` stats entry constrained allocators publish); when it
    covers the allocated set it is replayed as-is — the verify stage remains
    the authority on its validity.  Without a (complete) hint, a greedy
    list-coloring assigns each variable the first allowed register no
    interfering neighbor holds, walking the reverse perfect elimination
    order on chordal graphs so unconstrained instances still color with the
    clique number.

    Raises :class:`AllocationError` when some variable has no usable
    register left — for results produced by a constraint-aware allocator
    this indicates a bug upstream.
    """
    allocated_set = set(allocated)
    if not allocated_set:
        return {}

    if hint is not None:
        by_name = {str(v): v for v in allocated_set}
        assignment: Dict[Vertex, str] = {}
        for register, members in hint.items():
            for name in members:
                vertex = by_name.get(str(name))
                if vertex is not None:
                    assignment[vertex] = register
        if set(assignment) == allocated_set:
            return assignment
        # An incomplete hint (e.g. a warm-store record without stats) falls
        # through to the greedy path rather than producing a partial map.

    alias = constraints.alias_closure()
    induced = graph.subgraph(allocated_set)
    order: List[Vertex]
    if is_chordal(induced):
        # MCS order is the reverse of the PEO — the tree-scan coloring order.
        order = list(maximum_cardinality_search(induced))
    else:
        order = sorted(induced.vertices(), key=str)
    assignment = {}
    for vertex in order:
        taken = {
            assignment[neighbor]
            for neighbor in graph.neighbors(vertex)
            if neighbor in assignment
        }
        blocked = set(taken)
        for register in taken:
            blocked |= alias.get(register, frozenset())
        chosen = next(
            (r for r in constraints.allowed(str(vertex), num_registers) if r not in blocked),
            None,
        )
        if chosen is None:
            raise AllocationError(
                f"no allowed register left for {vertex} under the problem's "
                f"constraints (R={num_registers})"
            )
        assignment[vertex] = chosen
    return assignment
