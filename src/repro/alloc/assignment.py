"""Register assignment (coloring) of an allocation.

In the decoupled approach the assignment phase runs after allocation: the
allocated variables are mapped to concrete registers.  On chordal (SSA)
graphs this is the easy part the paper leverages — a greedy scan of the
reverse perfect elimination order ("tree-scan") colors the graph with exactly
its clique number — and on general graphs a greedy coloring is attempted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import AllocationError
from repro.graphs.chordal import is_chordal
from repro.graphs.coloring import chordal_coloring, greedy_coloring, is_valid_coloring
from repro.graphs.graph import Graph, Vertex


def assign_registers(
    graph: Graph,
    allocated: Iterable[Vertex],
    num_registers: int,
    register_names: Optional[Dict[int, str]] = None,
) -> Dict[Vertex, str]:
    """Map each allocated variable to a register name.

    ``register_names`` optionally maps color indices to target register names
    (e.g. ``{0: "r0", 1: "r1"}``); indices are used when omitted.

    Raises :class:`AllocationError` if the allocation cannot be colored with
    ``num_registers`` registers — which, for results produced by the library's
    allocators, indicates a bug upstream.
    """
    induced = graph.subgraph(allocated)
    if len(induced) == 0:
        return {}

    if is_chordal(induced):
        coloring = chordal_coloring(induced)
    else:
        coloring = greedy_coloring(induced)
        if not is_valid_coloring(induced, coloring):
            raise AllocationError("internal error: greedy coloring produced an invalid coloring")

    colors_used = max(coloring.values()) + 1
    if colors_used > num_registers:
        raise AllocationError(
            f"allocation needs {colors_used} registers but only {num_registers} are available"
        )

    def register_name(color: int) -> str:
        if register_names is not None:
            return register_names[color]
        return f"r{color}"

    return {vertex: register_name(color) for vertex, color in coloring.items()}
