"""Linear scan allocators (the paper's "LS"/"DLS" and "BLS" baselines).

The non-chordal evaluation (SPEC JVM98 under JikesRVM) compares against the
JIT-style linear scan family, which operates on linearised live intervals
rather than an interference graph:

* :class:`LinearScanAllocator` (LS) — the classical Poletto–Sarkar scan, with
  the cost-driven spill choice JikesRVM uses: whenever the active set
  overflows, evict the interval (among the active ones plus the incoming one)
  with the smallest spill cost.
* :class:`BeladyLinearScanAllocator` (BLS) — the paper's variant: if several
  candidates have spill costs within a relative ``threshold`` of the minimum,
  prefer the one whose interval ends furthest in the future (Belady's
  furthest-first rule).

Both allocators consume :class:`~repro.analysis.live_ranges.LiveInterval`
objects.  When a problem carries no intervals (pure-graph corpora), a
conservative interval per vertex is synthesised from the graph using a greedy
ordering, so the allocators remain usable — but the faithful path is to
provide real intervals from :func:`repro.analysis.live_ranges.live_intervals`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.analysis.live_ranges import LiveInterval
from repro.errors import AllocationError
from repro.ir.values import VirtualRegister


def _intervals_from_graph(problem: AllocationProblem) -> List[LiveInterval]:
    """Synthesize intervals when a problem only has a graph.

    Vertices are laid out on a line in insertion order; each vertex's interval
    spans from its own position to the position of its furthest neighbour,
    which preserves every interference of the original graph (possibly adding
    some).  This keeps LS/BLS runnable on graph-only corpora for comparison
    purposes.
    """
    order = {v: i for i, v in enumerate(problem.graph.vertices())}
    intervals = []
    for v in problem.graph.vertices():
        nbr_positions = [order[u] for u in problem.graph.neighbors(v)]
        start = min([order[v]] + nbr_positions)
        end = max([order[v]] + nbr_positions)
        intervals.append(LiveInterval(VirtualRegister(str(v)), start, end))
    intervals.sort(key=lambda i: (i.start, i.end, i.register.name))
    return intervals


class LinearScanAllocator(Allocator):
    """Classical linear scan with cost-driven eviction (paper's LS / DLS)."""

    name = "LS"
    version = "1"

    def choose_victim(
        self,
        current: LiveInterval,
        active: List[LiveInterval],
        costs: Dict[str, float],
    ) -> LiveInterval:
        """Pick the interval to spill among ``active + [current]``.

        The base policy evicts the cheapest interval (JikesRVM-style cost
        heuristic); subclasses override this hook.
        """
        candidates = active + [current]
        return min(candidates, key=lambda i: (costs.get(i.register.name, 0.0), i.register.name))

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Scan the intervals in start order, evicting on overflow."""
        intervals = problem.intervals if problem.intervals is not None else _intervals_from_graph(problem)
        costs = {str(v): problem.graph.weight(v) for v in problem.graph.vertices()}
        num_registers = problem.num_registers

        active: List[LiveInterval] = []
        spilled_names: List[str] = []
        evictions = 0

        for interval in sorted(intervals, key=lambda i: (i.start, i.end, i.register.name)):
            if interval.register.name not in costs:
                # Interval for a register absent from the graph (e.g. never
                # interfering zero-cost temporary): ignore it.
                continue
            active = [a for a in active if a.end >= interval.start]
            if len(active) < num_registers:
                active.append(interval)
                continue
            victim = self.choose_victim(interval, active, costs)
            evictions += 1
            spilled_names.append(victim.register.name)
            if victim is not interval:
                active.remove(victim)
                active.append(interval)

        allocated = [v for v in problem.graph.vertices() if str(v) not in set(spilled_names)]
        return self._result(
            problem,
            allocated,
            stats={"evictions": evictions, "intervals": len(intervals)},
        )


class BeladyLinearScanAllocator(LinearScanAllocator):
    """Linear scan with Belady furthest-first tie-breaking (paper's BLS).

    Parameters
    ----------
    threshold:
        Relative cost window: intervals whose spill cost is within
        ``(1 + threshold)`` of the cheapest candidate compete on their end
        point (furthest end is evicted).
    """

    name = "BLS"
    version = "1"

    def __init__(self, threshold: float = 0.25) -> None:
        super().__init__()
        threshold = float(threshold)
        if threshold < 0:
            # A negative threshold would silently invert the cost window
            # (making *no* candidate qualify except via float slack).
            raise AllocationError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def choose_victim(
        self,
        current: LiveInterval,
        active: List[LiveInterval],
        costs: Dict[str, float],
    ) -> LiveInterval:
        """Among near-minimum-cost candidates, evict the furthest-ending one."""
        candidates = active + [current]
        cheapest = min(costs.get(i.register.name, 0.0) for i in candidates)
        window = [
            i
            for i in candidates
            if costs.get(i.register.name, 0.0) <= cheapest * (1.0 + self.threshold) + 1e-12
        ]
        return max(window, key=lambda i: (i.end, i.register.name))


register_allocator("LS", LinearScanAllocator)
register_allocator("DLS", LinearScanAllocator)
register_allocator("linear-scan", LinearScanAllocator)
register_allocator("BLS", BeladyLinearScanAllocator)
register_allocator("belady", BeladyLinearScanAllocator)
