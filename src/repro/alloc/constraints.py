"""Per-variable register-file constraints on an allocation problem.

A :class:`ProblemConstraints` value makes an
:class:`~repro.alloc.problem.AllocationProblem` *constraint-aware*: instead
of ``R`` interchangeable colors, the problem allocates over a concrete
ordered register file (the target's :meth:`allocatable
<repro.targets.machine.TargetMachine.allocatable>` names), with optional
per-variable register-class restrictions, pre-colorings and register
aliasing.  Everything is canonical, hashable and JSON-able so constraints
can fold into the store's ``problem_digest`` — and the entire object is
*optional*: an unconstrained problem carries ``None`` and hashes, solves
and assigns exactly as it always did.

Variables are keyed by their *string* form (``str(vertex)``), which is how
graph vertices, store records and IR register names already round-trip.

:func:`auto_constraints` derives a deterministic constraint set for any
graph/target pair from SHA-256 hashes of variable base names — no RNG, no
process-dependent ordering — which is what ``PipelineSpec(constrain=f)``
and the oracle's constrained campaigns use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.graphs.graph import Graph
from repro.targets.machine import TargetMachine


@dataclass(frozen=True)
class ProblemConstraints:
    """Register-file structure attached to one allocation problem.

    Attributes
    ----------
    registers:
        The concrete allocatable register names, in allocation order.  A
        problem with ``R`` registers allocates over ``registers[:R]``.
    classes:
        Declared register classes as ``(name, members)`` pairs; per-variable
        class constraints reference these names.
    var_class:
        ``(variable, class name)`` pairs restricting a variable to a class.
    pre_colored:
        ``(variable, register)`` pairs pinning a variable to one register
        (it may still be spilled; if allocated, it must get that register).
    aliases:
        Pairs of distinct register names that overlap in hardware;
        interfering variables must not receive aliasing registers.
    """

    registers: Tuple[str, ...]
    classes: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    var_class: Tuple[Tuple[str, str], ...] = ()
    pre_colored: Tuple[Tuple[str, str], ...] = ()
    aliases: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.registers)) != len(self.registers):
            raise ValueError("constraint register file lists duplicate names")

    # ------------------------------------------------------------------ #
    # accessors (tuple storage keeps the value hashable/canonical; these
    # build the convenient mapping forms on demand — instances are small)
    # ------------------------------------------------------------------ #
    def class_map(self) -> Dict[str, Tuple[str, ...]]:
        """Declared classes as ``name -> members``."""
        return {name: members for name, members in self.classes}

    def var_class_map(self) -> Dict[str, str]:
        """Per-variable class constraints as ``variable -> class name``."""
        return {variable: cls for variable, cls in self.var_class}

    def pre_color_map(self) -> Dict[str, str]:
        """Pre-colorings as ``variable -> register``."""
        return {variable: register for variable, register in self.pre_colored}

    def alias_closure(self) -> Dict[str, FrozenSet[str]]:
        """Symmetric aliasing map: register -> registers it overlaps."""
        closure: Dict[str, set] = {}
        for first, second in self.aliases:
            closure.setdefault(first, set()).add(second)
            closure.setdefault(second, set()).add(first)
        return {name: frozenset(others) for name, others in closure.items()}

    def conflicts(self, first: str, second: str) -> bool:
        """Whether two register names collide (identity or hardware alias)."""
        if first == second:
            return True
        return second in self.alias_closure().get(first, frozenset())

    def allowed(self, variable: str, num_registers: Optional[int] = None) -> Tuple[str, ...]:
        """The registers ``variable`` may receive, in allocation order.

        ``num_registers`` truncates the file to the problem's ``R`` budget
        first (the register-count sweeps of the paper).  A pre-colored
        variable is allowed exactly its register (when in budget); a
        class-constrained variable its class's allocatable members; any
        other variable the whole (truncated) file.  Unknown class names
        yield an empty allowance — the ``TGT001`` checker reports them.
        """
        file = self.registers if num_registers is None else self.registers[:num_registers]
        pre = self.pre_color_map().get(variable)
        if pre is not None:
            return (pre,) if pre in file else ()
        cls = self.var_class_map().get(variable)
        if cls is not None:
            members = set(self.class_map().get(cls, ()))
            return tuple(name for name in file if name in members)
        return file

    # ------------------------------------------------------------------ #
    # canonical forms
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-able form (sorted where order is not semantic)."""
        return {
            "registers": list(self.registers),
            "classes": sorted([name, list(members)] for name, members in self.classes),
            "var_class": sorted([v, c] for v, c in self.var_class),
            "pre_colored": sorted([v, r] for v, r in self.pre_colored),
            "aliases": sorted(sorted([a, b]) for a, b in self.aliases),
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical payload (folds into ``problem_digest``)."""
        return hashlib.sha256(
            json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_target(
        cls,
        target: TargetMachine,
        var_class: Optional[Mapping[str, str]] = None,
        pre_colored: Optional[Mapping[str, str]] = None,
    ) -> "ProblemConstraints":
        """Build constraints over ``target``'s allocatable file.

        The register order, declared classes and aliasing pairs come from
        the target description; ``var_class`` / ``pre_colored`` add the
        per-variable restrictions.
        """
        return cls(
            registers=target.allocatable(),
            classes=tuple(
                (rc.name, tuple(rc.members)) for rc in target.register_classes
            ),
            var_class=tuple(sorted((var_class or {}).items())),
            pre_colored=tuple(sorted((pre_colored or {}).items())),
            aliases=tuple(tuple(pair) for pair in target.aliasing),
        )


def _base_name(variable: str) -> str:
    """The SSA-rename-invariant base of a variable name (``x.3`` -> ``x``)."""
    return variable.split(".", 1)[0]


def _bucket(token: str, salt: str) -> int:
    """Deterministic 0..9999 bucket of ``token`` (stable across processes)."""
    digest = hashlib.sha256(f"{salt}/{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % 10_000


def auto_constraints(
    graph: Graph,
    target: TargetMachine,
    fraction: float = 0.25,
) -> ProblemConstraints:
    """Derive deterministic per-variable constraints for ``graph`` on ``target``.

    Roughly ``fraction`` of the variables get a register-class constraint
    (drawn from the target's declared classes) and a quarter of *those* are
    additionally pre-colored to one member of their class.  Choices hash the
    variable's *base* name, so SSA renaming does not change a variable's
    constraint and any process derives the same set — no RNG is consumed.
    Targets without declared classes constrain over the plain allocatable
    file (pre-coloring only).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"constraint fraction must be in [0, 1], got {fraction}")
    classes = [(rc.name, tuple(rc.members)) for rc in target.register_classes]
    allocatable = target.allocatable()
    var_class: Dict[str, str] = {}
    pre_colored: Dict[str, str] = {}
    threshold = int(round(fraction * 10_000))
    for variable in sorted({_base_name(str(v)) for v in graph.vertices()}):
        if _bucket(variable, f"{target.name}:pick") >= threshold:
            continue
        allowed: Tuple[str, ...] = allocatable
        if classes:
            name, members = classes[_bucket(variable, f"{target.name}:class") % len(classes)]
            chosen = tuple(r for r in allocatable if r in set(members))
            if chosen:
                var_class[variable] = name
                allowed = chosen
        if allowed and _bucket(variable, f"{target.name}:pin") < 2_500:
            pre_colored[variable] = allowed[_bucket(variable, f"{target.name}:reg") % len(allowed)]
    # Constraints key the *full* vertex names so allocators and checkers can
    # look vertices up directly; every SSA version of a base name shares its
    # constraint.
    by_vertex_class: Dict[str, str] = {}
    by_vertex_pre: Dict[str, str] = {}
    for vertex in graph.vertices():
        base = _base_name(str(vertex))
        if base in var_class:
            by_vertex_class[str(vertex)] = var_class[base]
        if base in pre_colored:
            by_vertex_pre[str(vertex)] = pre_colored[base]
    return ProblemConstraints.from_target(
        target, var_class=by_vertex_class, pre_colored=by_vertex_pre
    )
