"""The layered heuristic for general graphs (paper Algorithms 5 and 6, "LH").

On non-chordal interference graphs (non-SSA programs) the maximum weighted
stable set is NP-hard, so the layered approach degrades gracefully into a
heuristic: the vertices are greedily *clustered* into stable sets by
decreasing weight (Algorithm 5), and the ``R`` heaviest clusters are
allocated (Algorithm 6).  Every cluster is a stable set, so the union of the
``R`` chosen clusters is always ``R``-colorable, whatever the graph.

Complexity: ``O(R · (|V| + |E|))`` — each clustering round visits each
remaining vertex and its adjacency once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.graphs.graph import Graph, Vertex


def cluster_vertices(
    graph: Graph,
    candidates: Optional[Sequence[Vertex]] = None,
    weights: Optional[Dict[Vertex, float]] = None,
) -> List[List[Vertex]]:
    """Greedily partition ``candidates`` into stable-set clusters (Algorithm 5).

    Vertices are considered by decreasing weight.  Each outer round opens a
    new cluster, then scans the remaining vertices in order, adding every
    vertex that does not interfere with the cluster built so far and skipping
    (for this round) the neighbours of the vertices added.
    """
    if weights is None:
        weights = graph.weights()
    if candidates is None:
        candidates = graph.vertices()
    remaining: List[Vertex] = sorted(candidates, key=lambda v: (-weights[v], str(v)))
    clusters: List[List[Vertex]] = []
    remaining_set: Set[Vertex] = set(remaining)

    while remaining_set:
        cluster: List[Vertex] = []
        blocked: Set[Vertex] = set()
        for vertex in remaining:
            if vertex not in remaining_set or vertex in blocked:
                continue
            cluster.append(vertex)
            blocked.add(vertex)
            blocked |= graph.neighbors(vertex)
        clusters.append(cluster)
        remaining_set.difference_update(cluster)
        remaining = [v for v in remaining if v in remaining_set]
    return clusters


def allocate_clusters(
    graph: Graph,
    clusters: Sequence[Sequence[Vertex]],
    num_registers: int,
    weights: Optional[Dict[Vertex, float]] = None,
) -> List[Vertex]:
    """Keep the ``R`` heaviest clusters (Algorithm 6) and return their union."""
    if weights is None:
        weights = graph.weights()
    ranked = sorted(clusters, key=lambda cluster: -sum(weights[v] for v in cluster))
    chosen = ranked[: max(num_registers, 0)]
    allocated: List[Vertex] = []
    for cluster in chosen:
        allocated.extend(cluster)
    return allocated


class LayeredHeuristicAllocator(Allocator):
    """Paper's LH: clustering-based layered allocation for general graphs."""

    name = "LH"
    version = "1"

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Cluster the variables and allocate the heaviest R clusters.

        The clustering (Algorithm 5) is independent of the register count, so
        it is computed once per problem and shared across every ``R`` of a
        sweep through the problem's derived-data cache; only the cluster
        ranking (Algorithm 6) runs per register count.
        """
        graph = problem.graph
        clusters = problem.derived("lh_clusters", lambda: cluster_vertices(graph))
        allocated = allocate_clusters(graph, clusters, problem.num_registers)
        return self._result(
            problem,
            allocated,
            stats={
                "clusters": len(clusters),
                "clusters_allocated": min(problem.num_registers, len(clusters)),
                "largest_cluster": max((len(c) for c in clusters), default=0),
            },
        )


register_allocator("LH", LayeredHeuristicAllocator)
register_allocator("layered-heuristic", LayeredHeuristicAllocator)
