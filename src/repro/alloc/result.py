"""Allocation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable

from repro.graphs.graph import Vertex


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of running one allocator on one problem instance.

    Attributes
    ----------
    allocator:
        The registry name of the allocator that produced this result.
    num_registers:
        The register count the allocation was computed for.
    allocated:
        Variables kept in registers.
    spilled:
        Variables evicted to memory.
    spill_cost:
        Total weight of the spilled variables — the quantity every figure of
        the paper reports (normalized to the optimal allocator's value).
    stats:
        Free-form per-allocator counters (iterations, layers, cliques, ...).
    """

    allocator: str
    num_registers: int
    allocated: FrozenSet[Vertex]
    spilled: FrozenSet[Vertex]
    spill_cost: float
    stats: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_sets(
        cls,
        allocator: str,
        num_registers: int,
        allocated: Iterable[Vertex],
        spilled: Iterable[Vertex],
        spill_cost: float,
        stats: Dict[str, Any] | None = None,
    ) -> "AllocationResult":
        """Convenience constructor normalizing the collections."""
        return cls(
            allocator=allocator,
            num_registers=num_registers,
            allocated=frozenset(allocated),
            spilled=frozenset(spilled),
            spill_cost=float(spill_cost),
            stats=dict(stats or {}),
        )

    @property
    def num_allocated(self) -> int:
        """Number of variables kept in registers."""
        return len(self.allocated)

    @property
    def num_spilled(self) -> int:
        """Number of spilled variables."""
        return len(self.spilled)

    def normalized_cost(self, optimal_cost: float) -> float:
        """Cost ratio against an optimal cost.

        When the optimum is zero (no spilling needed) the ratio is 1.0 if this
        allocation also avoided spilling, and ``inf`` otherwise; the
        experiment harness filters/flags such instances explicitly.
        """
        if optimal_cost > 0:
            return self.spill_cost / optimal_cost
        return 1.0 if self.spill_cost == 0 else float("inf")
