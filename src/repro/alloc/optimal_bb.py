"""Exact optimal allocation by branch and bound.

The exact spill-everywhere optimum maximizes the total weight of allocated
variables subject to every maximal clique keeping at most ``R`` allocated
members.  On chordal graphs this constraint is exactly ``R``-colorability of
the allocated sub-graph, so the optimum is the true one; on general graphs it
is the clique relaxation the paper's framework uses (Sections 1 and 5).

This module provides a dependency-free solver used as a fallback when scipy
is unavailable and as an independent cross-check in the test suite.  It
explores variables in decreasing weight order with a greedy upper bound and
prunes aggressively; it is exponential in the worst case, so the experiment
harness prefers the ILP backend for large instances.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import SearchBudgetError
from repro.graphs.cliques import Clique
from repro.graphs.graph import Graph, Vertex
from repro.telemetry.tracer import current_tracer


def solve_branch_and_bound(
    graph: Graph,
    num_registers: int,
    cliques: Sequence[Clique] | None = None,
    max_nodes: int = 200_000,
) -> Tuple[Set[Vertex], float]:
    """Return ``(allocated, allocated_weight)`` for the exact optimum.

    ``max_nodes`` bounds the number of explored search nodes; exceeding it
    raises :class:`SearchBudgetError` so callers can fall back to the ILP.
    The default is sized to give up within a fraction of a second: a weak
    bound at small ``R`` makes large instances hopeless anyway, and fast
    failure keeps fuzz campaigns that sweep every allocator affordable.
    """
    if cliques is None:
        from repro.graphs.cliques import maximal_cliques

        cliques = maximal_cliques(graph)

    vertices: List[Vertex] = sorted(graph.vertices(), key=lambda v: (-graph.weight(v), str(v)))
    weights = [graph.weight(v) for v in vertices]
    # Remaining-weight suffix sums for the greedy upper bound.
    suffix = [0.0] * (len(vertices) + 1)
    for i in range(len(vertices) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + weights[i]

    clique_indices: Dict[Vertex, List[int]] = {}
    for index, clique in enumerate(cliques):
        for vertex in clique:
            clique_indices.setdefault(vertex, []).append(index)
    capacity = [num_registers] * len(cliques)

    best_weight = -1.0
    best_set: Set[Vertex] = set()
    current: List[Vertex] = []
    explored = 0

    def dfs(index: int, current_weight: float) -> None:
        nonlocal best_weight, best_set, explored
        explored += 1
        if explored > max_nodes:
            raise SearchBudgetError(
                f"branch-and-bound budget of {max_nodes} nodes exceeded "
                f"(|V|={len(vertices)}); use the ILP backend"
            )
        if current_weight > best_weight:
            best_weight = current_weight
            best_set = set(current)
        if index == len(vertices):
            return
        # Greedy bound: even taking every remaining vertex cannot beat best.
        if current_weight + suffix[index] <= best_weight:
            return
        vertex = vertices[index]
        # Branch 1: allocate the vertex if every clique containing it has room.
        indices = clique_indices.get(vertex, [])
        if all(capacity[i] > 0 for i in indices):
            for i in indices:
                capacity[i] -= 1
            current.append(vertex)
            dfs(index + 1, current_weight + weights[index])
            current.pop()
            for i in indices:
                capacity[i] += 1
        # Branch 2: spill the vertex.
        dfs(index + 1, current_weight)

    if num_registers <= 0:
        return set(), 0.0
    tracer = current_tracer()
    try:
        dfs(0, 0.0)
    except SearchBudgetError:
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.budget_exhausted")
        raise
    finally:
        # Search-effort gauges: nodes of the most recent solve and the
        # fraction of the budget it consumed (1.0 = gave up).  Recorded on
        # the budget-exceeded path too, where they explain the failure.
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.solves")
            tracer.count("alloc.optimal_bb.nodes_total", explored)
            tracer.gauge("alloc.optimal_bb.nodes", explored)
            tracer.gauge("alloc.optimal_bb.budget_used", explored / max_nodes if max_nodes else 1.0)
    return best_set, best_weight


class BranchAndBoundAllocator(Allocator):
    """Exact optimal allocator backed by the branch-and-bound solver."""

    name = "Optimal-BB"
    #: v2: the default search budget dropped from 2M to 200k nodes, so
    #: instances in the 200k-2M band that previously solved now raise
    #: SearchBudgetError — a result-altering change per the cache-key
    #: contract, hence the bump (stale v1 cells must not be served warm
    #: for instances a cold run can no longer decide).
    version = "2"

    def __init__(self, max_nodes: int = 200_000) -> None:
        self.max_nodes = max_nodes

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Solve the instance exactly."""
        allocated, _ = solve_branch_and_bound(
            problem.graph,
            problem.num_registers,
            cliques=problem.cliques,
            max_nodes=self.max_nodes,
        )
        return self._result(problem, allocated, stats={"backend": "branch-and-bound"})


register_allocator("Optimal-BB", BranchAndBoundAllocator)
