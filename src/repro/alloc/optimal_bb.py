"""Exact optimal allocation by branch and bound.

The exact spill-everywhere optimum maximizes the total weight of allocated
variables subject to every maximal clique keeping at most ``R`` allocated
members.  On chordal graphs this constraint is exactly ``R``-colorability of
the allocated sub-graph, so the optimum is the true one; on general graphs it
is the clique relaxation the paper's framework uses (Sections 1 and 5).

This module provides a dependency-free solver used as a fallback when scipy
is unavailable and as an independent cross-check in the test suite.  It
explores variables in decreasing weight order with a greedy upper bound and
prunes aggressively; it is exponential in the worst case, so the experiment
harness prefers the ILP backend for large instances.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.alloc.base import Allocator, register_allocator
from repro.alloc.constraints import ProblemConstraints
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import SearchBudgetError
from repro.graphs.cliques import Clique
from repro.graphs.graph import Graph, Vertex
from repro.telemetry.tracer import current_tracer


def solve_branch_and_bound(
    graph: Graph,
    num_registers: int,
    cliques: Sequence[Clique] | None = None,
    max_nodes: int = 200_000,
) -> Tuple[Set[Vertex], float]:
    """Return ``(allocated, allocated_weight)`` for the exact optimum.

    ``max_nodes`` bounds the number of explored search nodes; exceeding it
    raises :class:`SearchBudgetError` so callers can fall back to the ILP.
    The default is sized to give up within a fraction of a second: a weak
    bound at small ``R`` makes large instances hopeless anyway, and fast
    failure keeps fuzz campaigns that sweep every allocator affordable.
    """
    if cliques is None:
        from repro.graphs.cliques import maximal_cliques

        cliques = maximal_cliques(graph)

    vertices: List[Vertex] = sorted(graph.vertices(), key=lambda v: (-graph.weight(v), str(v)))
    weights = [graph.weight(v) for v in vertices]
    # Remaining-weight suffix sums for the greedy upper bound.
    suffix = [0.0] * (len(vertices) + 1)
    for i in range(len(vertices) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + weights[i]

    clique_indices: Dict[Vertex, List[int]] = {}
    for index, clique in enumerate(cliques):
        for vertex in clique:
            clique_indices.setdefault(vertex, []).append(index)
    capacity = [num_registers] * len(cliques)

    best_weight = -1.0
    best_set: Set[Vertex] = set()
    current: List[Vertex] = []
    explored = 0

    def dfs(index: int, current_weight: float) -> None:
        nonlocal best_weight, best_set, explored
        explored += 1
        if explored > max_nodes:
            raise SearchBudgetError(
                f"branch-and-bound budget of {max_nodes} nodes exceeded "
                f"(|V|={len(vertices)}); use the ILP backend"
            )
        if current_weight > best_weight:
            best_weight = current_weight
            best_set = set(current)
        if index == len(vertices):
            return
        # Greedy bound: even taking every remaining vertex cannot beat best.
        if current_weight + suffix[index] <= best_weight:
            return
        vertex = vertices[index]
        # Branch 1: allocate the vertex if every clique containing it has room.
        indices = clique_indices.get(vertex, [])
        if all(capacity[i] > 0 for i in indices):
            for i in indices:
                capacity[i] -= 1
            current.append(vertex)
            dfs(index + 1, current_weight + weights[index])
            current.pop()
            for i in indices:
                capacity[i] += 1
        # Branch 2: spill the vertex.
        dfs(index + 1, current_weight)

    if num_registers <= 0:
        return set(), 0.0
    tracer = current_tracer()
    try:
        dfs(0, 0.0)
    except SearchBudgetError:
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.budget_exhausted")
        raise
    finally:
        # Search-effort gauges: nodes of the most recent solve and the
        # fraction of the budget it consumed (1.0 = gave up).  Recorded on
        # the budget-exceeded path too, where they explain the failure.
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.solves")
            tracer.count("alloc.optimal_bb.nodes_total", explored)
            tracer.gauge("alloc.optimal_bb.nodes", explored)
            tracer.gauge("alloc.optimal_bb.budget_used", explored / max_nodes if max_nodes else 1.0)
    return best_set, best_weight


def solve_branch_and_bound_constrained(
    graph: Graph,
    constraints: ProblemConstraints,
    num_registers: int,
    max_nodes: int = 200_000,
) -> Tuple[Dict[Vertex, str], float]:
    """Exact constrained optimum: ``(assignment, allocated_weight)``.

    Unlike the unconstrained solver — which counts colors through clique
    capacities — the constrained search branches on *concrete* registers:
    each vertex (decreasing weight order) either takes one of its allowed
    registers that no interfering neighbor holds (identity or aliasing
    conflict) or spills.  This is exact for the constrained
    spill-everywhere problem on any graph, at a branching factor of
    ``|allowed| + 1`` per vertex; ``max_nodes`` bounds the search exactly
    like the unconstrained budget.

    Registers with identical *constraint signatures* — the same hardware
    alias set and the same set of variables allowed to use them — are
    interchangeable while unused, so the search branches on at most one
    fresh register per signature group (the classic coloring symmetry
    break).  Without it a file of ``R`` mutually-symmetric registers
    multiplies the search by up to ``R!``.
    """
    registers = constraints.registers[:num_registers]
    if num_registers <= 0 or not registers:
        return {}, 0.0
    alias = constraints.alias_closure()
    vertices: List[Vertex] = sorted(graph.vertices(), key=lambda v: (-graph.weight(v), str(v)))
    weights = [graph.weight(v) for v in vertices]
    suffix = [0.0] * (len(vertices) + 1)
    for i in range(len(vertices) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + weights[i]
    allowed: Dict[Vertex, Tuple[str, ...]] = {
        v: constraints.allowed(str(v), num_registers) for v in vertices
    }

    # Symmetry groups: swapping two unused registers with equal signatures
    # maps any completion to an equally-valid, equal-weight one.
    membership: Dict[str, Set[str]] = {register: set() for register in registers}
    for vertex in vertices:
        for register in allowed[vertex]:
            membership[register].add(str(vertex))
    group_of: Dict[str, int] = {}
    groups: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], int] = {}
    for register in registers:
        signature = (
            tuple(sorted(alias.get(register, frozenset()))),
            tuple(sorted(membership[register])),
        )
        group_of[register] = groups.setdefault(signature, len(groups))

    best_weight = -1.0
    best_assignment: Dict[Vertex, str] = {}
    assignment: Dict[Vertex, str] = {}
    used_count: Dict[str, int] = {register: 0 for register in registers}
    explored = 0

    def dfs(index: int, current_weight: float) -> None:
        nonlocal best_weight, best_assignment, explored
        explored += 1
        if explored > max_nodes:
            raise SearchBudgetError(
                f"constrained branch-and-bound budget of {max_nodes} nodes "
                f"exceeded (|V|={len(vertices)})"
            )
        if current_weight > best_weight:
            best_weight = current_weight
            best_assignment = dict(assignment)
        if index == len(vertices):
            return
        if current_weight + suffix[index] <= best_weight:
            return
        vertex = vertices[index]
        neighbors = graph.neighbors(vertex)
        fresh_groups: Set[int] = set()
        for register in allowed[vertex]:
            if used_count[register] == 0:
                group = group_of[register]
                if group in fresh_groups:
                    continue
                fresh_groups.add(group)
            conflicting = alias.get(register, frozenset())
            if any(
                neighbor in assignment
                and (assignment[neighbor] == register or assignment[neighbor] in conflicting)
                for neighbor in neighbors
            ):
                continue
            assignment[vertex] = register
            used_count[register] += 1
            dfs(index + 1, current_weight + weights[index])
            used_count[register] -= 1
            del assignment[vertex]
        # Spill branch.
        dfs(index + 1, current_weight)

    tracer = current_tracer()
    try:
        dfs(0, 0.0)
    except SearchBudgetError:
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.budget_exhausted")
        raise
    finally:
        if tracer.enabled:
            tracer.count("alloc.optimal_bb.solves")
            tracer.count("alloc.optimal_bb.nodes_total", explored)
            tracer.gauge("alloc.optimal_bb.nodes", explored)
            tracer.gauge("alloc.optimal_bb.budget_used", explored / max_nodes if max_nodes else 1.0)
    return best_assignment, best_weight


class BranchAndBoundAllocator(Allocator):
    """Exact optimal allocator backed by the branch-and-bound solver."""

    name = "Optimal-BB"
    #: v2: the default search budget dropped from 2M to 200k nodes, so
    #: instances in the 200k-2M band that previously solved now raise
    #: SearchBudgetError — a result-altering change per the cache-key
    #: contract, hence the bump (stale v1 cells must not be served warm
    #: for instances a cold run can no longer decide).
    version = "2"
    supports_constraints = True

    def __init__(self, max_nodes: int = 200_000) -> None:
        self.max_nodes = max_nodes

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Solve the instance exactly."""
        if problem.constraints is not None:
            assignment, _ = solve_branch_and_bound_constrained(
                problem.graph,
                problem.constraints,
                problem.num_registers,
                max_nodes=self.max_nodes,
            )
            register_layers: Dict[str, List[str]] = {}
            for vertex, register in assignment.items():
                register_layers.setdefault(register, []).append(str(vertex))
            return self._result(
                problem,
                assignment.keys(),
                stats={
                    "backend": "branch-and-bound-constrained",
                    "constrained": True,
                    "register_layers": {
                        register: sorted(members)
                        for register, members in sorted(register_layers.items())
                    },
                },
            )
        allocated, _ = solve_branch_and_bound(
            problem.graph,
            problem.num_registers,
            cliques=problem.cliques,
            max_nodes=self.max_nodes,
        )
        return self._result(problem, allocated, stats={"backend": "branch-and-bound"})


register_allocator("Optimal-BB", BranchAndBoundAllocator)
