"""Allocator base class and registry.

Every allocator exposes one method, :meth:`Allocator.allocate`, taking an
:class:`~repro.alloc.problem.AllocationProblem` and returning an
:class:`~repro.alloc.result.AllocationResult`.  The registry maps the short
names used throughout the paper (``"GC"``, ``"NL"``, ``"BL"``, ``"FPL"``,
``"BFPL"``, ``"LH"``, ``"LS"``, ``"BLS"``, ``"Optimal"``) to classes so the
experiment harness and the CLI can select allocators by name.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Type

from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import AllocationError


class Allocator(abc.ABC):
    """Abstract base class of every register allocator."""

    #: registry name; subclasses must override.
    name: str = "abstract"
    #: algorithm version tag, part of the experiment store's cache key
    #: ``(problem_digest, name, version, R)``.  Bump it whenever a change can
    #: alter the *result* of :meth:`allocate` on some instance (spill set,
    #: cost, tie-breaking); pure speedups with identical output keep the tag,
    #: so previously cached cells stay valid.
    version: str = "1"
    #: whether :meth:`allocate` honors
    #: :attr:`AllocationProblem.constraints
    #: <repro.alloc.problem.AllocationProblem.constraints>` (register
    #: classes, pre-coloring, aliasing).  The pipeline refuses to run a
    #: constrained problem through a non-supporting allocator — silently
    #: ignoring constraints would produce assignments the verifier rejects.
    supports_constraints: bool = False

    @abc.abstractmethod
    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Solve ``problem`` and return which variables are kept in registers."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _result(
        self,
        problem: AllocationProblem,
        allocated,
        stats: Dict | None = None,
    ) -> AllocationResult:
        """Package an allocated set into a result, computing the spill cost."""
        allocated = set(allocated)
        spilled = [v for v in problem.graph.vertices() if v not in allocated]
        return AllocationResult.from_sets(
            allocator=self.name,
            num_registers=problem.num_registers,
            allocated=allocated,
            spilled=spilled,
            spill_cost=problem.spill_cost_of(spilled),
            stats=stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[[], Allocator]] = {}


def register_allocator(name: str, factory: Callable[[], Allocator] | Type[Allocator]) -> None:
    """Register an allocator factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.lower()] = factory  # type: ignore[assignment]


def get_allocator(name: str) -> Allocator:
    """Instantiate the allocator registered under ``name``."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise AllocationError(
            f"unknown allocator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_allocators() -> List[str]:
    """Names of all registered allocators, sorted."""
    return sorted(_REGISTRY)
