"""Fixed-point layered allocation (paper Algorithms 3 and 4, "FPL"/"BFPL").

After the first ``R`` layers, further variables may still fit: a variable can
be allocated as long as none of the maximal cliques containing it already has
``R`` allocated members (on a chordal graph, maximal cliques are exactly the
sets of simultaneously-live variables, so this is precisely the register-
pressure constraint).  The fixed-point allocator therefore:

1. runs the plain layered allocation (at most ``R`` layers);
2. counts, per maximal clique, how many of its members are allocated, and
   removes from the candidate pool every vertex belonging to a *saturated*
   clique (Algorithm 4, ``Update``);
3. repeatedly allocates one more maximum weighted stable set of the remaining
   candidates, updating the clique counts, until no candidate is left — the
   fixed point.

Note (documented deviation): the paper's Algorithm 3 omits adding ``result``
to ``allocated_list`` inside the fixed-point loop, which is an obvious typo —
the allocated list would otherwise never grow after the first phase.  We add
it.  We also stop early when the stable-set search returns an empty layer
(possible when every remaining candidate has zero weight), which guarantees
termination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.alloc.base import register_allocator
from repro.alloc.biased import bias_weights
from repro.alloc.layered import (
    LayeredOptimalAllocator,
    constrained_setup,
    optimal_layer,
    register_candidates,
)
from repro.alloc.problem import AllocationProblem
from repro.alloc.result import AllocationResult
from repro.errors import AllocationError
from repro.graphs.cliques import Clique
from repro.graphs.graph import Vertex
from repro.telemetry.tracer import current_tracer


class FixedPointLayeredAllocator(LayeredOptimalAllocator):
    """Layered allocation iterated to a fixed point (paper's FPL)."""

    name = "FPL"
    version = "1"

    def allocate(self, problem: AllocationProblem) -> AllocationResult:
        """Run Algorithm 3: R layers, then extra stable sets until saturation."""
        if problem.constraints is not None:
            return self._allocate_constrained(problem)
        graph = problem.graph
        weights = self.layer_weights(problem)
        num_registers = problem.num_registers
        if num_registers <= 0:
            # Every clique is already saturated: nothing can be allocated.
            return self._result(problem, [], stats={"layers": 0, "fixed_point_rounds": 0})

        candidates: Set[Vertex] = set(graph.vertices())
        allocated: List[Vertex] = []
        # One PEO for the whole run; both phases reuse it over shrinking
        # candidate masks instead of re-deriving it per round.
        peo = problem.peo if (self.shared_peo and candidates) else None

        tracer = current_tracer()

        # ---------------- Phase 1: the plain layered allocation ---------- #
        layers = 0
        with tracer.span("alloc:layered_phase", category="alloc", allocator=self.name) as phase:
            while candidates and layers < num_registers:
                layer = optimal_layer(graph, candidates, weights=weights, step=1, peo=peo)
                if tracer.enabled:
                    tracer.count("alloc.frank.calls")
                    tracer.count("alloc.frank.peo_reused" if peo is not None else "alloc.frank.peo_recomputed")
                if not layer:
                    break
                allocated.extend(layer)
                candidates.difference_update(layer)
                layers += 1
            phase.set(layers=layers)

        # ---------------- Phase 2: iterate to a fixed point -------------- #
        cliques: List[Clique] = list(problem.cliques)
        allocated_per_clique: Dict[int, int] = {i: 0 for i in range(len(cliques))}
        allowed: Set[int] = set(range(len(cliques)))
        clique_of_vertex: Dict[Vertex, List[int]] = {}
        for index, clique in enumerate(cliques):
            for vertex in clique:
                clique_of_vertex.setdefault(vertex, []).append(index)

        def update(freshly_allocated: List[Vertex]) -> None:
            """Algorithm 4: bump clique counters, drop saturated cliques."""
            for vertex in freshly_allocated:
                for index in clique_of_vertex.get(vertex, []):
                    if index not in allowed:
                        continue
                    allocated_per_clique[index] += 1
                    if allocated_per_clique[index] >= num_registers:
                        candidates.difference_update(cliques[index])
                        allowed.discard(index)

        update(allocated)

        extra_rounds = 0
        with tracer.span("alloc:fixed_point_phase", category="alloc", allocator=self.name) as phase:
            while candidates:
                layer = optimal_layer(graph, candidates, weights=weights, step=1, peo=peo)
                if tracer.enabled:
                    tracer.count("alloc.frank.calls")
                    tracer.count("alloc.frank.peo_reused" if peo is not None else "alloc.frank.peo_recomputed")
                if not layer:
                    break
                allocated.extend(layer)
                candidates.difference_update(layer)
                update(layer)
                extra_rounds += 1
            phase.set(rounds=extra_rounds, saturated_cliques=len(cliques) - len(allowed))
        if tracer.enabled:
            tracer.count("alloc.fixed_point.rounds", extra_rounds)
            tracer.count("alloc.fixed_point.saturated_cliques", len(cliques) - len(allowed))

        return self._result(
            problem,
            allocated,
            stats={
                "layers": layers,
                "fixed_point_rounds": extra_rounds,
                "saturated_cliques": len(cliques) - len(allowed),
                "total_cliques": len(cliques),
            },
        )

    def _allocate_constrained(self, problem: AllocationProblem) -> AllocationResult:
        """Constrained FPL: per-register rounds, then fixed-point extension.

        Phase 1 is the constrained NL layering (one stable set per concrete
        register).  Phase 2 replaces the clique-saturation Update — which
        assumes ``R`` interchangeable colors — with its constrained
        analogue: repeatedly *extend* each register's layer with another
        stable set over the still-compatible candidates (allowed to hold
        that register, not adjacent to the layer's members or to aliasing
        layers) until a full sweep grows nothing.  Every extension keeps the
        layer an independent set bound to one register, so the fixed point
        is sound by construction.
        """
        if self.step != 1:
            raise AllocationError(
                f"constrained layered allocation requires step=1, got {self.step}"
            )
        graph = problem.graph
        weights = self.layer_weights(problem)
        tracer = current_tracer()
        if problem.num_registers <= 0:
            return self._result(
                problem, [], stats={"layers": 0, "fixed_point_rounds": 0, "constrained": True}
            )
        peo = problem.peo if self.shared_peo else None
        _constraints, registers, allowed, alias = constrained_setup(problem)

        remaining = set(graph.vertices())
        layers: Dict[str, List[Vertex]] = {}

        def grow(register: str) -> bool:
            """One stable-set extension of ``register``'s layer; True if it grew."""
            candidates = register_candidates(graph, register, remaining, allowed, layers, alias)
            for member in layers.get(register, []):
                candidates.difference_update(graph.neighbors(member))
            if not candidates:
                return False
            layer = optimal_layer(graph, candidates, weights=weights, step=1, peo=peo)
            if tracer.enabled:
                tracer.count("alloc.frank.calls")
                tracer.count("alloc.frank.peo_reused" if peo is not None else "alloc.frank.peo_recomputed")
            if not layer:
                return False
            layers.setdefault(register, []).extend(layer)
            remaining.difference_update(layer)
            return True

        rounds = 0
        with tracer.span("alloc:layered_phase", category="alloc", allocator=self.name) as phase:
            for register in registers:
                if not remaining:
                    break
                if grow(register):
                    rounds += 1
            phase.set(layers=rounds)

        extra_rounds = 0
        with tracer.span("alloc:fixed_point_phase", category="alloc", allocator=self.name) as phase:
            changed = True
            while changed and remaining:
                changed = False
                for register in registers:
                    if not remaining:
                        break
                    if grow(register):
                        extra_rounds += 1
                        changed = True
            phase.set(rounds=extra_rounds, saturated_cliques=0)
        if tracer.enabled:
            tracer.count("alloc.fixed_point.rounds", extra_rounds)

        allocated = [v for members in layers.values() for v in members]
        return self._result(
            problem,
            allocated,
            stats={
                "layers": rounds,
                "fixed_point_rounds": extra_rounds,
                "candidates_left": len(remaining),
                "constrained": True,
                "register_layers": {
                    register: sorted(str(v) for v in members)
                    for register, members in layers.items()
                },
            },
        )


class BiasedFixedPointLayeredAllocator(FixedPointLayeredAllocator):
    """Fixed-point layered allocation with degree-biased search weights (BFPL)."""

    name = "BFPL"
    version = "1"

    def layer_weights(self, problem: AllocationProblem) -> Optional[Dict[Vertex, float]]:
        """Search with the biased weights of :func:`repro.alloc.biased.bias_weights`.

        Cached per problem (the bias is ``R``-independent), like BL's.
        """
        return problem.derived("bias_weights", lambda: bias_weights(problem.graph))


register_allocator("FPL", FixedPointLayeredAllocator)
register_allocator("BFPL", BiasedFixedPointLayeredAllocator)
register_allocator("fixed-point", FixedPointLayeredAllocator)
