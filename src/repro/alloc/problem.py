"""The allocation problem instance shared by every allocator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.alloc.constraints import ProblemConstraints
from repro.analysis.live_ranges import LiveInterval
from repro.errors import AllocationError, NotChordalError
from repro.graphs.chordal import (
    is_perfect_elimination_order,
    maximum_cardinality_search,
)
from repro.graphs.cliques import Clique, maximal_cliques_chordal, maximal_cliques_general
from repro.graphs.graph import Graph, Vertex


@dataclass
class AllocationProblem:
    """A spill-everywhere register allocation instance.

    Attributes
    ----------
    graph:
        Weighted interference graph; vertex weights are spill costs.
    num_registers:
        ``R``, the size of the register file.
    intervals:
        Optional linearised live intervals (needed only by the linear-scan
        allocators).  Interval register names must match graph vertices.
    name:
        Human-readable instance name (benchmark/function), used in reports.
    constraints:
        Optional register-file constraints
        (:class:`~repro.alloc.constraints.ProblemConstraints`): concrete
        register names, per-variable classes/pre-colorings, aliasing.
        ``None`` — the default, and the only value historical problems ever
        carried — keeps digests, allocator behaviour and assignments
        byte-identical to the unconstrained stack.

    Expensive derived structures (chordality, a perfect elimination order and
    the maximal cliques) are computed lazily and cached because several
    allocators running on the same instance need the same data.

    Cache-sharing contract
    ----------------------
    :meth:`with_registers` clones share these caches **by reference** — the
    clone and the original point at the *same* PEO list, clique list and
    ``derived`` dict, because none of them depend on ``R``.  The shared data
    is valid only while the underlying :class:`~repro.graphs.graph.Graph` is
    unchanged.  Mutating the graph after a cache has been filled (adding or
    removing vertices/edges, reweighting) is detected through the graph's
    :attr:`~repro.graphs.graph.Graph.mutation_stamp`: the next cached-property
    access on *any* clone drops every cached structure — including the shared
    ``derived`` dict, so content digests cached there can never go stale —
    and recomputes from the current graph.
    """

    graph: Graph
    num_registers: int
    intervals: Optional[List[LiveInterval]] = None
    name: str = ""
    constraints: Optional[ProblemConstraints] = None
    _chordal: Optional[bool] = field(default=None, repr=False)
    _peo: Optional[List[Vertex]] = field(default=None, repr=False)
    _cliques: Optional[List[Clique]] = field(default=None, repr=False)
    #: shared scratch cache for R-independent derived data (biased weights,
    #: heuristic clusters, content digests, ...); allocators key it by a short
    #: string.  The *same dict object* is carried across
    #: :meth:`with_registers` clones — see the cache-sharing contract above.
    _derived_cache: Dict[str, object] = field(default_factory=dict, repr=False, compare=False)
    #: graph mutation stamp the caches were filled against (stale-cache guard).
    _cache_stamp: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_registers < 0:
            raise AllocationError(f"negative register count {self.num_registers}")
        if self._cache_stamp is None:
            self._cache_stamp = getattr(self.graph, "mutation_stamp", None)

    #: sentinel key under which the *shared* derived dict records the graph
    #: stamp it was filled against, so invalidation of the shared dict
    #: happens exactly once across all :meth:`with_registers` sharers.
    _DERIVED_STAMP_KEY = "__graph_mutation_stamp__"

    # ------------------------------------------------------------------ #
    def ensure_cache_coherent(self) -> bool:
        """Drop every cached derived structure if the graph mutated.

        Returns ``True`` when the caches were still coherent, ``False`` when
        a graph mutation was detected and caches were flushed.  Every
        cached-property access calls this; the pipeline engine also calls it
        explicitly before keying the content-addressed store, because a
        stale cached digest would poison the cache for every later run.

        Two stamps are kept: a per-instance one guarding the private
        ``_chordal``/``_peo``/``_cliques`` fields, and one stored *inside*
        the shared ``derived`` dict guarding its entries — so after a
        mutation the shared dict is cleared exactly once, and a sibling
        clone catching up later invalidates only its private fields instead
        of wiping entries the first sharer already recomputed.
        """
        stamp = getattr(self.graph, "mutation_stamp", None)
        coherent = True
        if stamp != self._cache_stamp:
            self._chordal = None
            self._peo = None
            self._cliques = None
            self._cache_stamp = stamp
            coherent = False
        shared_stamp = self._derived_cache.get(self._DERIVED_STAMP_KEY)
        if shared_stamp != stamp:
            if shared_stamp is not None:
                # clear() (not a fresh dict) so every sharer observes it.
                self._derived_cache.clear()
                coherent = False
            self._derived_cache[self._DERIVED_STAMP_KEY] = stamp
        return coherent

    def _elimination_order(self) -> List[Vertex]:
        """The reversed-MCS candidate elimination order, computed once.

        ``is_chordal``, ``peo`` and ``cliques`` all start from the same
        deterministic maximum-cardinality search of the same graph; caching
        the order in the shared ``derived`` dict means one MCS per instance
        (and per register-count sweep) instead of one per property.  The
        per-property results are unchanged — each used to run its own MCS
        and got this exact order every time.
        """
        return self.derived(
            "mcs_elimination_order",
            lambda: list(reversed(maximum_cardinality_search(self.graph))),
        )

    @property
    def is_chordal(self) -> bool:
        """Whether the interference graph is chordal (cached)."""
        self.ensure_cache_coherent()
        if self._chordal is None:
            self._chordal = is_perfect_elimination_order(self.graph, self._elimination_order())
        return self._chordal

    @property
    def peo(self) -> List[Vertex]:
        """A perfect elimination order of the graph (chordal instances only)."""
        self.ensure_cache_coherent()
        if self._peo is None:
            if not self.is_chordal:
                raise NotChordalError(
                    "graph is not chordal: no perfect elimination order exists"
                )
            self._peo = self._elimination_order()
        return self._peo

    @property
    def cliques(self) -> List[Clique]:
        """The maximal cliques of the interference graph (cached)."""
        self.ensure_cache_coherent()
        if self._cliques is None:
            if self.is_chordal:
                self._cliques = maximal_cliques_chordal(self.graph, self._elimination_order())
            else:
                self._cliques = maximal_cliques_general(self.graph)
        return self._cliques

    @property
    def max_pressure(self) -> int:
        """The clique number ω of the graph — MaxLive on SSA programs."""
        return max((len(c) for c in self.cliques), default=0)

    @property
    def variables(self) -> List[Vertex]:
        """The variables competing for registers."""
        return self.graph.vertices()

    @property
    def total_weight(self) -> float:
        """Sum of all spill costs — the cost of spilling everything."""
        return self.graph.total_weight()

    def needs_spilling(self) -> bool:
        """Whether the register pressure exceeds the register count."""
        return self.max_pressure > self.num_registers

    def with_registers(self, num_registers: int) -> "AllocationProblem":
        """Return the same instance with a different register count.

        Cached graph-derived structures (chordality flag, PEO, cliques and
        the ``derived`` dict) are shared *by reference* because they do not
        depend on ``R`` — this is what makes register-count sweeps cheap.
        The clone therefore aliases the original's graph and caches: mutate
        neither.  If the graph does mutate, the
        :attr:`~repro.graphs.graph.Graph.mutation_stamp` guard invalidates
        the caches of every clone on its next access (see the class-level
        cache-sharing contract).
        """
        clone = AllocationProblem(
            graph=self.graph,
            num_registers=num_registers,
            intervals=self.intervals,
            name=self.name,
            constraints=self.constraints,
        )
        clone._chordal = self._chordal
        clone._peo = self._peo
        clone._cliques = self._cliques
        clone._derived_cache = self._derived_cache
        clone._cache_stamp = self._cache_stamp
        return clone

    def derived(self, key: str, compute):
        """Return an ``R``-independent derived value, computing it once.

        ``compute`` is a zero-argument callable evaluated on the first
        request; the result is memoized in a cache shared with every
        :meth:`with_registers` clone, so register-count sweeps pay graph
        preprocessing once per instance rather than once per ``R``.  The
        cache participates in the stale-graph guard: a graph mutation clears
        it for all clones at once.
        """
        self.ensure_cache_coherent()
        if key not in self._derived_cache:
            self._derived_cache[key] = compute()
        return self._derived_cache[key]

    def spill_cost_of(self, spilled: Sequence[Vertex]) -> float:
        """Total cost of spilling ``spilled``."""
        return self.graph.total_weight(spilled)

    def weights(self) -> Dict[Vertex, float]:
        """Copy of the spill-cost map."""
        return self.graph.weights()
