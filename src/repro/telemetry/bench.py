"""Bench-trajectory history files and the ``bench-diff`` comparator.

``BENCH_*.json`` files committed at the repo root record the performance
trajectory of the project, one dated entry per recorded run::

    {
      "format": "repro-bench-history/1",
      "series": [
        {"recorded_at": "...Z", "git_rev": "...", "payload": {...}},
        ...
      ]
    }

``payload`` is exactly what ``benchmarks/bench_pipeline.py --json`` emits
(per-stage seconds, dense-kernel speedup, check overhead, telemetry
overhead).  ``benchmarks/bench_pipeline.py --append-history PATH`` appends an
entry; ``repro-alloc bench-diff OLD NEW`` compares the latest entries of two
files (either history files or bare payloads — the pre-history flat layout
loads transparently) and flags per-metric regressions beyond a threshold.

Comparison semantics per metric path:

* paths ending in ``_seconds`` or ``_ratio``, and every stage under
  ``pipeline_stage_seconds*`` — lower is better;
* paths ending in ``speedup`` — higher is better;
* everything else (seeds, sizes, stage lists) — informational, not compared.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import TelemetryError
from repro.store.base import current_git_rev, utc_now_iso

#: format tag of the history layout.
HISTORY_FORMAT = "repro-bench-history/1"


def load_bench_file(path: str) -> Dict[str, Any]:
    """Load a bench file, normalizing to the history layout.

    A bare payload (the pre-history flat layout) is wrapped as a one-entry
    series with no ``recorded_at``/``git_rev`` provenance.
    """
    if not os.path.exists(path):
        raise TelemetryError(f"bench file not found: {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"{path}: cannot load bench file: {exc}") from exc
    if not isinstance(data, dict):
        raise TelemetryError(f"{path}: bench file must hold a JSON object")
    if "format" not in data:
        return {"format": HISTORY_FORMAT, "series": [{"payload": data}]}
    if data.get("format") != HISTORY_FORMAT:
        raise TelemetryError(f"{path}: unknown bench format {data.get('format')!r}")
    series = data.get("series")
    if not isinstance(series, list) or not all(isinstance(e, dict) and "payload" in e for e in series):
        raise TelemetryError(f"{path}: history 'series' must be a list of entries with payloads")
    return data


def latest_entry(path: str) -> Dict[str, Any]:
    """The newest entry of a bench file (raises if the series is empty)."""
    series = load_bench_file(path)["series"]
    if not series:
        raise TelemetryError(f"{path}: bench history has no entries")
    return series[-1]


def make_entry(
    payload: Dict[str, Any],
    recorded_at: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> Dict[str, Any]:
    """Build a dated history entry around a bench payload."""
    return {
        "recorded_at": recorded_at if recorded_at is not None else utc_now_iso(),
        "git_rev": git_rev if git_rev is not None else current_git_rev(),
        "payload": payload,
    }


def append_history(path: str, payload: Dict[str, Any], **entry_kwargs: Any) -> Dict[str, Any]:
    """Append a dated entry to the history file at ``path`` (creating it).

    An existing flat-payload file is upgraded in place: its old contents
    become entry one of the series.  Returns the entry written.
    """
    if os.path.exists(path):
        data = load_bench_file(path)
    else:
        data = {"format": HISTORY_FORMAT, "series": []}
    entry = make_entry(payload, **entry_kwargs)
    data["series"].append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


# ---------------------------------------------------------------------- #
# comparison
# ---------------------------------------------------------------------- #
@dataclass
class MetricDelta:
    """One compared metric between two bench entries."""

    path: str
    old: float
    new: float
    #: relative change in the *bad* direction: positive = worse.
    regression: float
    higher_is_better: bool

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf")


@dataclass
class BenchDiff:
    """Outcome of comparing two bench entries at a threshold."""

    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression > self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _flatten_numeric(payload: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    flat: Dict[str, float] = {}
    for key in sorted(payload):
        value = payload[key]
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_numeric(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


def _direction(path: str) -> Optional[bool]:
    """True = higher is better, False = lower is better, None = skip."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith("speedup"):
        return True
    if leaf.endswith("_seconds") or leaf.endswith("_ratio"):
        return False
    if path.startswith("pipeline_stage_seconds"):
        return False
    return None


def diff_entries(
    old_entry: Dict[str, Any],
    new_entry: Dict[str, Any],
    threshold: float = 0.25,
) -> BenchDiff:
    """Compare two history entries, flagging per-metric regressions.

    A metric regresses when it moves in its bad direction by more than
    ``threshold`` (relative): a time metric going from 1.0s to 1.3s is a
    ``0.3`` regression; a speedup falling from 3.0x to 2.0x is ``0.5``.
    Metrics present in only one entry are not compared.
    """
    old_flat = _flatten_numeric(old_entry.get("payload", {}))
    new_flat = _flatten_numeric(new_entry.get("payload", {}))
    diff = BenchDiff(threshold=threshold)
    for path in sorted(set(old_flat) & set(new_flat)):
        higher_is_better = _direction(path)
        if higher_is_better is None:
            continue
        old, new = old_flat[path], new_flat[path]
        if old <= 0.0:
            continue
        change = (old - new) / old if higher_is_better else (new - old) / old
        diff.deltas.append(
            MetricDelta(
                path=path,
                old=old,
                new=new,
                regression=change,
                higher_is_better=higher_is_better,
            )
        )
    return diff


def render_bench_diff(
    diff: BenchDiff,
    old_label: str = "old",
    new_label: str = "new",
) -> str:
    """Human-readable table of a :class:`BenchDiff`."""
    lines = [
        f"bench-diff: {len(diff.deltas)} metric(s) compared, "
        f"{len(diff.regressions)} regression(s) beyond {diff.threshold:.0%}",
        f"{'metric':<48} {old_label:>12} {new_label:>12} {'change':>9}  verdict",
    ]
    for delta in diff.deltas:
        direction = "↑" if delta.higher_is_better else "↓"
        if delta.regression > diff.threshold:
            verdict = "REGRESSED"
        elif delta.regression < -diff.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        signed = -delta.regression if delta.higher_is_better else delta.regression
        lines.append(
            f"{delta.path + ' ' + direction:<48} {delta.old:>12.6g} {delta.new:>12.6g} "
            f"{signed:>+8.1%}  {verdict}"
        )
    return "\n".join(lines)
