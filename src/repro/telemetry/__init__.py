"""Telemetry: spans, counters, trace export, and bench-trajectory tooling.

See :mod:`repro.telemetry.tracer` for the collection model (ambient tracer,
no-op default, process-pool snapshot merging), :mod:`repro.telemetry.export`
for the JSONL / Chrome-trace / text renderings, and
:mod:`repro.telemetry.bench` for the ``BENCH_*.json`` history format and the
``bench-diff`` comparator.  (``bench`` is intentionally not imported here:
it depends on :mod:`repro.store`, which itself records telemetry.)
"""

from repro.telemetry.export import (
    JSONL_FORMAT,
    read_jsonl,
    render_text_summary,
    snapshot_to_chrome,
    snapshot_to_jsonl_lines,
    write_chrome,
    write_jsonl,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    TraceSnapshot,
    current_tracer,
    scalar_attrs,
    use_tracer,
)

__all__ = [
    "JSONL_FORMAT",
    "NULL_TRACER",
    "NullTracer",
    "SpanEvent",
    "TraceSnapshot",
    "Tracer",
    "current_tracer",
    "read_jsonl",
    "render_text_summary",
    "scalar_attrs",
    "snapshot_to_chrome",
    "snapshot_to_jsonl_lines",
    "use_tracer",
    "write_chrome",
    "write_jsonl",
]
