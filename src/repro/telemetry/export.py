"""Trace exporters: append-only JSONL, Chrome trace-event JSON, text summary.

Three renderings of one :class:`~repro.telemetry.tracer.TraceSnapshot`:

* **JSONL** (``repro-trace/1``) — one JSON object per line: a ``meta``
  header, then one ``span`` line per event in id order, then ``counter`` and
  ``gauge`` lines in name order.  Append-only by construction (an event log,
  not a document), machine-readable back via :func:`read_jsonl`, and stable:
  identical snapshots serialize to identical bytes (keys sorted, no
  timestamps invented at export time).
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` object format
  understood by Perfetto and ``chrome://tracing``.  Spans become complete
  (``ph: "X"``) events with microsecond ``ts``/``dur``; each lane becomes a
  named thread row; counters and gauges become ``ph: "C"`` counter samples.
* **Text summary** — per-span-name aggregate table (count / total / mean /
  share of root wall time) plus counters and gauges, for terminal use via
  ``repro-alloc stats`` or ``repro-alloc trace`` without ``-o``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List

from repro.errors import TelemetryError
from repro.telemetry.tracer import SpanEvent, TraceSnapshot

#: format tag written into (and required from) the JSONL meta header.
JSONL_FORMAT = "repro-trace/1"


# ---------------------------------------------------------------------- #
# JSONL event log
# ---------------------------------------------------------------------- #
def snapshot_to_jsonl_lines(snapshot: TraceSnapshot) -> Iterator[str]:
    """Yield the JSONL lines (no trailing newlines) for a snapshot."""
    meta: Dict[str, Any] = {
        "type": "meta",
        "format": JSONL_FORMAT,
        "spans": len(snapshot.events),
        "counters": len(snapshot.counters),
        "gauges": len(snapshot.gauges),
        "lanes": {str(lane): label for lane, label in sorted(snapshot.lanes.items())},
    }
    meta.update(snapshot.meta)
    yield json.dumps(meta, sort_keys=True)
    for event in snapshot.events:
        record: Dict[str, Any] = {
            "type": "span",
            "id": event.span_id,
            "parent": event.parent_id,
            "name": event.name,
            "cat": event.category,
            "ts": round(event.start, 9),
            "dur": round(event.duration, 9) if event.closed else -1.0,
            "depth": event.depth,
            "lane": event.lane,
        }
        if event.attrs:
            record["attrs"] = event.attrs
        yield json.dumps(record, sort_keys=True)
    for name in sorted(snapshot.counters):
        yield json.dumps(
            {"type": "counter", "name": name, "value": snapshot.counters[name]},
            sort_keys=True,
        )
    for name in sorted(snapshot.gauges):
        yield json.dumps(
            {"type": "gauge", "name": name, "value": snapshot.gauges[name]},
            sort_keys=True,
        )


def write_jsonl(snapshot: TraceSnapshot, path: str, append: bool = False) -> None:
    """Write (or, with ``append=True``, extend) a JSONL event log at ``path``.

    Appending adds a complete meta+events block, so one file can hold several
    consecutive traces; :func:`read_jsonl` folds them into one snapshot.
    """
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as handle:
        for line in snapshot_to_jsonl_lines(snapshot):
            handle.write(line + "\n")


def read_jsonl(path: str) -> TraceSnapshot:
    """Parse a JSONL event log back into a :class:`TraceSnapshot`.

    Counters from multiple appended trace blocks accumulate; span ids are
    re-assigned sequentially so a multi-block file still has unique ids.
    Raises :class:`~repro.errors.TelemetryError` on malformed input.
    """
    snapshot = TraceSnapshot()
    next_id = 1
    id_offset = 0
    saw_meta = False
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise TelemetryError(f"{path}:{lineno}: expected an object with a 'type' field")
            kind = record["type"]
            if kind == "meta":
                fmt = record.get("format", "")
                if not str(fmt).startswith("repro-trace/"):
                    raise TelemetryError(f"{path}:{lineno}: unknown trace format {fmt!r}")
                saw_meta = True
                id_offset = next_id - 1
                for lane, label in record.get("lanes", {}).items():
                    snapshot.lanes.setdefault(int(lane), str(label))
                for key, value in record.items():
                    if key not in ("type", "format", "spans", "counters", "gauges", "lanes"):
                        snapshot.meta.setdefault(key, value)
            elif kind == "span":
                if not saw_meta:
                    raise TelemetryError(f"{path}:{lineno}: span before meta header")
                try:
                    snapshot.events.append(
                        SpanEvent(
                            span_id=int(record["id"]) + id_offset,
                            parent_id=(int(record["parent"]) + id_offset) if record["parent"] else 0,
                            name=str(record["name"]),
                            category=str(record["cat"]),
                            start=float(record["ts"]),
                            duration=float(record["dur"]),
                            depth=int(record["depth"]),
                            lane=int(record.get("lane", 0)),
                            attrs=dict(record.get("attrs", {})),
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise TelemetryError(f"{path}:{lineno}: malformed span record: {exc}") from exc
                next_id = max(next_id, snapshot.events[-1].span_id + 1)
            elif kind == "counter":
                try:
                    name, value = str(record["name"]), float(record["value"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise TelemetryError(f"{path}:{lineno}: malformed counter record: {exc}") from exc
                snapshot.counters[name] = snapshot.counters.get(name, 0) + value
            elif kind == "gauge":
                try:
                    snapshot.gauges[str(record["name"])] = float(record["value"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise TelemetryError(f"{path}:{lineno}: malformed gauge record: {exc}") from exc
            else:
                raise TelemetryError(f"{path}:{lineno}: unknown record type {kind!r}")
    if not saw_meta:
        raise TelemetryError(f"{path}: not a {JSONL_FORMAT} event log (no meta header)")
    return snapshot


# ---------------------------------------------------------------------- #
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------- #
def snapshot_to_chrome(snapshot: TraceSnapshot) -> Dict[str, Any]:
    """Render a snapshot as a Chrome trace-event *object format* document."""
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": lane,
            "name": "thread_name",
            "args": {"name": label},
        }
        for lane, label in sorted(snapshot.lanes.items())
    ]
    for event in snapshot.events:
        duration = event.duration if event.closed else 0.0
        record: Dict[str, Any] = {
            "ph": "X",
            "pid": 1,
            "tid": event.lane,
            "name": event.name,
            "cat": event.category,
            "ts": round(event.start * 1e6, 3),
            "dur": round(duration * 1e6, 3),
        }
        if event.attrs:
            record["args"] = dict(event.attrs)
        trace_events.append(record)
    # Counters and gauges are cumulative totals, sampled once at the end of
    # the timeline so they render as a final value rather than a curve.
    sample_ts = round(snapshot.end_time() * 1e6, 3)
    for name in sorted(snapshot.counters):
        trace_events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": sample_ts,
                "name": name,
                "args": {"value": snapshot.counters[name]},
            }
        )
    for name in sorted(snapshot.gauges):
        trace_events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": sample_ts,
                "name": name,
                "args": {"value": snapshot.gauges[name]},
            }
        )
    document: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if snapshot.meta:
        document["otherData"] = dict(snapshot.meta)
    return document


def write_chrome(snapshot: TraceSnapshot, path: str) -> None:
    """Write the Chrome trace-event JSON document for a snapshot."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot_to_chrome(snapshot), handle, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------- #
# human text summary
# ---------------------------------------------------------------------- #
def render_text_summary(snapshot: TraceSnapshot, top: int = 30) -> str:
    """Aggregate table of span totals, counters, and gauges."""
    lines: List[str] = []
    lanes = sorted(snapshot.lanes) or [0]
    lines.append(
        f"trace: {len(snapshot.events)} spans, {len(snapshot.counters)} counters, "
        f"{len(snapshot.gauges)} gauges, {len(lanes)} lane(s)"
    )
    for key in sorted(snapshot.meta):
        lines.append(f"  {key}: {snapshot.meta[key]}")

    root_wall = sum(e.duration for e in snapshot.events if e.parent_id == 0 and e.closed)
    aggregate: Dict[tuple, List[float]] = {}
    for event in snapshot.events:
        bucket = aggregate.setdefault((event.category, event.name), [0, 0.0])
        bucket[0] += 1
        bucket[1] += max(event.duration, 0.0)
    if aggregate:
        lines.append("")
        lines.append(f"{'category':<10} {'span':<32} {'count':>6} {'total ms':>10} {'mean ms':>9} {'%':>6}")
        ranked = sorted(aggregate.items(), key=lambda item: (-item[1][1], item[0]))
        for (category, name), (count, total) in ranked[:top]:
            share = (100.0 * total / root_wall) if root_wall > 0 else 0.0
            lines.append(
                f"{category:<10} {name:<32} {count:>6d} {total * 1e3:>10.3f} "
                f"{total * 1e3 / count:>9.3f} {share:>5.1f}%"
            )
        if len(ranked) > top:
            lines.append(f"... {len(ranked) - top} more span name(s) elided")
    if snapshot.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(snapshot.counters):
            value = snapshot.counters[name]
            rendered = f"{value:g}" if value == int(value) else f"{value:.6g}"
            lines.append(f"  {name} = {rendered}")
    if snapshot.gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name} = {snapshot.gauges[name]:.6g}")
    return "\n".join(lines)
