"""Zero-dependency tracing: nested spans, counters, gauges, ambient binding.

A :class:`Tracer` records three kinds of telemetry:

* **spans** — nested, named wall-clock intervals (pipeline run → pass →
  allocator internals), opened with the :meth:`Tracer.span` context manager;
* **counters** — monotonically accumulated totals (:meth:`Tracer.count`),
  e.g. store cache hits or Frank-search invocations;
* **gauges** — last-write-wins measurements (:meth:`Tracer.gauge`), e.g. the
  Optimal-BB search-node count of the most recent solve.

The library never *requires* a tracer: every instrumentation point reads the
process-wide ambient tracer (:func:`current_tracer`), which defaults to the
shared :data:`NULL_TRACER` — a no-op whose ``span``/``count``/``gauge``
methods do nothing and allocate nothing.  Hot paths guard any string
formatting behind ``tracer.enabled``, so an untraced run pays one attribute
read and (at most) one no-op call per instrumentation point; the bench
harness measures and bounds this (``test_noop_tracer_overhead_bound``).

Enable tracing by binding a real tracer around the work::

    from repro.telemetry import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        Pipeline.from_spec("NL", target="st231").run(function)
    snapshot = tracer.snapshot()

Process-pool workers cannot share the parent's tracer; they build their own,
return :meth:`Tracer.snapshot` (a picklable value object) with their results,
and the parent folds the snapshots back in shard order with
:meth:`Tracer.merge` — each worker gets its own *lane* (rendered as a thread
row in the Chrome trace export), and merge order is deterministic because the
pool paths iterate futures in shard order.

Determinism: span ids are assigned in creation order and exports list events
in id order, so two runs of the same workload produce the same span
name/nesting/ordering sequence — only the measured times differ.  Tests that
need byte-stable output inject a fake ``clock``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional


@dataclass
class SpanEvent:
    """One recorded span: a named interval in the tracer's timeline."""

    #: 1-based id, assigned in creation order (export order).
    span_id: int
    #: id of the enclosing span; ``0`` for a root span.
    parent_id: int
    name: str
    category: str
    #: seconds since the owning tracer's epoch.
    start: float
    #: seconds; ``-1.0`` while the span is still open.
    duration: float
    #: nesting depth at creation (roots are 0).
    depth: int
    #: 0 = the owning process; merged worker snapshots get lanes 1..n.
    lane: int = 0
    #: JSON-scalar annotations attached at creation or via ``set()``.
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.duration >= 0.0


@dataclass
class TraceSnapshot:
    """Picklable, immutable-by-convention copy of a tracer's state.

    This is the unit of cross-process telemetry: workers return snapshots,
    parents :meth:`Tracer.merge` them, exporters consume them.
    """

    events: List[SpanEvent] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: lane number -> human label ("main", "worker-0", ...).
    lanes: Dict[int, str] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def span_names(self) -> List[str]:
        """Span names in id (creation) order — the determinism fingerprint."""
        return [event.name for event in self.events]

    def find(self, name: str) -> List[SpanEvent]:
        """All spans with the given name, in id order."""
        return [event for event in self.events if event.name == name]

    def children_of(self, span_id: int) -> List[SpanEvent]:
        """Direct children of one span, in id order."""
        return [event for event in self.events if event.parent_id == span_id]

    def end_time(self) -> float:
        """Largest ``start + duration`` over all closed events (0.0 if none)."""
        ends = [e.start + e.duration for e in self.events if e.closed]
        return max(ends) if ends else 0.0


class _Span:
    """Context manager handle for one open span (do not construct directly)."""

    __slots__ = ("_tracer", "_event")

    def __init__(self, tracer: "Tracer", event: SpanEvent) -> None:
        self._tracer = tracer
        self._event = event

    def set(self, **attrs: Any) -> "_Span":
        """Attach JSON-scalar annotations to the span while it is open."""
        self._event.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._finish(self._event)
        return False


class _NullSpan:
    """The shared no-op span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op, nothing is allocated.

    A single shared instance (:data:`NULL_TRACER`) is the ambient default;
    instrumentation points check :attr:`enabled` before doing any work beyond
    the method call itself.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, category: str = "span", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def merge(self, snapshot: TraceSnapshot, label: Optional[str] = None) -> None:
        pass

    def snapshot(self) -> TraceSnapshot:
        return TraceSnapshot()


#: the process-wide default tracer (disabled).
NULL_TRACER = NullTracer()


class Tracer:
    """An enabled telemetry collector (see the module docstring).

    Parameters
    ----------
    clock:
        Monotonic time source; injectable for byte-stable golden tests.
        Timestamps are recorded relative to the first reading (the epoch).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.events: List[SpanEvent] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.lanes: Dict[int, str] = {0: "main"}
        self.meta: Dict[str, Any] = {}
        self._stack: List[int] = []
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, category: str = "span", **attrs: Any) -> _Span:
        """Open a nested span; use as ``with tracer.span("pass:allocate"):``."""
        event = SpanEvent(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else 0,
            name=name,
            category=category,
            start=self._clock() - self._epoch,
            duration=-1.0,
            depth=len(self._stack),
            attrs=attrs,
        )
        self._next_id += 1
        self.events.append(event)
        self._stack.append(event.span_id)
        return _Span(self, event)

    def _finish(self, event: SpanEvent) -> None:
        event.duration = (self._clock() - self._epoch) - event.start
        if self._stack and self._stack[-1] == event.span_id:
            self._stack.pop()
        else:  # out-of-order exit: tolerate rather than corrupt the stack
            try:
                self._stack.remove(event.span_id)
            except ValueError:
                pass

    def count(self, name: str, n: float = 1) -> None:
        """Accumulate ``n`` onto the named counter (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge (last write wins)."""
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------ #
    # snapshots and cross-process merging
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TraceSnapshot:
        """Deep-copied, picklable view of everything recorded so far.

        Spans still open keep ``duration = -1.0``; exporters clamp them.
        """
        return TraceSnapshot(
            events=[replace(event, attrs=dict(event.attrs)) for event in self.events],
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            lanes=dict(self.lanes),
            meta=dict(self.meta),
        )

    def merge(self, snapshot: TraceSnapshot, label: Optional[str] = None) -> None:
        """Fold a child snapshot (e.g. from a pool worker) into this tracer.

        Child spans are re-identified into this tracer's id space and placed
        on a fresh *lane*; child roots become children of the currently open
        span (so a worker's work nests under the batch span that spawned it).
        Counters accumulate, gauges are overwritten (merge order decides, and
        the pool paths merge in shard order, so the outcome is
        deterministic).  Child lane labels beyond lane 0 are preserved with a
        ``label/`` prefix, supporting two-level pools.
        """
        base = (max(self.lanes) + 1) if self.lanes else 1
        label = label or f"lane-{base}"
        base_depth = len(self._stack)
        attach_to = self._stack[-1] if self._stack else 0

        # Every child lane (including lane 0, which an empty worker still
        # claims) maps onto a fresh parent lane, so lane numbering depends
        # only on merge order — not on how much work each worker received.
        child_lanes = sorted({event.lane for event in snapshot.events} | set(snapshot.lanes) | {0})
        lane_map: Dict[int, int] = {}
        for offset, child_lane in enumerate(child_lanes):
            lane_map[child_lane] = base + offset
            child_label = snapshot.lanes.get(child_lane, f"lane-{child_lane}")
            self.lanes[base + offset] = label if child_lane == 0 else f"{label}/{child_label}"

        id_map: Dict[int, int] = {}
        for event in snapshot.events:
            new_id = self._next_id
            self._next_id += 1
            id_map[event.span_id] = new_id
            self.events.append(
                replace(
                    event,
                    span_id=new_id,
                    parent_id=id_map.get(event.parent_id, attach_to),
                    depth=event.depth + base_depth,
                    lane=lane_map[event.lane],
                    attrs=dict(event.attrs),
                )
            )
        for name, value in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.gauges.items():
            self.gauges[name] = value


# ---------------------------------------------------------------------- #
# the ambient tracer
# ---------------------------------------------------------------------- #
class _AmbientBinding(threading.local):
    """Per-thread ambient-tracer slot, defaulting to the no-op tracer."""

    tracer: Any = NULL_TRACER


_AMBIENT = _AmbientBinding()


def current_tracer() -> Any:
    """The ambient tracer instrumentation points record into.

    Defaults to :data:`NULL_TRACER`; rebind with :class:`use_tracer`.  The
    binding is **per thread**: a fresh thread (or pool worker process)
    starts at the no-op default and builds its own tracer when traced
    execution is requested — the allocation service relies on this to run
    one independent tracer per worker thread without cross-talk, merging
    snapshots into its aggregate afterwards."""
    return _AMBIENT.tracer


class use_tracer:
    """Context manager binding ``tracer`` as this thread's ambient tracer.

    Re-entrant and nestable; the previous binding is restored on exit::

        with use_tracer(tracer):
            ...  # current_tracer() is `tracer` here

    The binding is thread-local (see :func:`current_tracer`), so
    concurrently executing threads can each hold their own tracer.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Any) -> None:
        self._tracer = tracer
        self._previous: Any = None

    def __enter__(self) -> Any:
        self._previous = _AMBIENT.tracer
        _AMBIENT.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        _AMBIENT.tracer = self._previous
        return False


def scalar_attrs(mapping: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Filter a mapping down to JSON-scalar values (span-attr safe subset)."""
    if not mapping:
        return {}
    return {
        key: value
        for key, value in mapping.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
