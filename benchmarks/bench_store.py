"""Experiment-store benchmarks: cold sweep vs warm-cache sweep.

The store's value proposition is that the second sweep over an unchanged
corpus is pure lookup — no allocator runs.  These benchmarks measure the
cold (compute + persist) and warm (digest + fetch) paths for both backends
and assert the warm path actually skips the allocators, so a regression in
the cache-key computation (e.g. a digest that accidentally includes the
instance name or a timestamp) fails loudly rather than silently recomputing.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.store import open_store
from repro.workloads.corpus import build_corpus

CONFIG = ExperimentConfig(
    allocators=["NL", "BFPL", "GC", "Optimal"],
    register_counts=[2, 4, 8],
    verify=False,
)
MAX_INSTANCES = 8


@pytest.fixture(scope="module")
def corpus():
    return build_corpus("lao_kernels", seed=2013, scale=0.5)


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_cold_sweep_with_store(benchmark, corpus, tmp_path_factory, backend):
    root = tmp_path_factory.mktemp(f"cold_{backend}")
    counter = {"n": 0}

    def cold_sweep():
        counter["n"] += 1
        with open_store(root / f"run{counter['n']}.{backend}") as store:
            run_experiment(corpus, CONFIG, max_instances=MAX_INSTANCES, store=store)

    benchmark.pedantic(cold_sweep, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_warm_sweep_is_pure_lookup(benchmark, corpus, tmp_path_factory, backend):
    path = tmp_path_factory.mktemp(f"warm_{backend}") / f"store.{backend}"
    with open_store(path) as store:
        run_experiment(corpus, CONFIG, max_instances=MAX_INSTANCES, store=store)

    def warm_sweep():
        with open_store(path) as store:
            run_experiment(corpus, CONFIG, max_instances=MAX_INSTANCES, store=store)

    benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    with open_store(path) as store:
        manifests = store.manifests()
    # Every post-seed sweep must have been served entirely from the cache.
    assert all(m.cells_computed == 0 for m in manifests[1:])
    assert manifests[-1].hit_rate == 1.0
