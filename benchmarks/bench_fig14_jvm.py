"""Figure 14 — layered heuristic vs baselines on the SPEC JVM98 stand-in."""

import math

from benchmarks.conftest import publish
from repro.experiments.figures import figure14


def test_figure14(benchmark, jvm_records):
    result = benchmark.pedantic(lambda: figure14(records=jvm_records), rounds=1, iterations=1)
    publish(result)

    series = result.series
    for allocator, by_count in series.items():
        for count, value in by_count.items():
            if not math.isnan(value):
                assert value >= 1.0 - 1e-9
    # Paper shape: LH tracks the optimum and beats the linear scans and GC on
    # average across the register-count sweep.
    def mean(name):
        values = [v for v in series[name].values() if not math.isnan(v)]
        return sum(values) / len(values)

    assert mean("LH") <= mean("LS") + 1e-6
    assert mean("LH") <= mean("BLS") + 1e-6
    assert mean("LH") <= mean("GC") + 0.1
