"""Section 4 complexity claim — layered allocation scales as O(R · (|V| + |E|)).

Benchmarks the BFPL allocator (and the baselines, for contrast) on random
chordal graphs of increasing size, and checks that the layered allocator's
runtime grows roughly linearly in |V| + |E| (within a generous factor, since
constant factors and Python overheads dominate at small sizes).
"""

import time

import pytest

from repro.alloc import get_allocator
from repro.alloc.problem import AllocationProblem
from repro.graphs.generators import random_chordal_graph

SIZES = (100, 200, 400, 800)


def _problem(size: int) -> AllocationProblem:
    graph = random_chordal_graph(size, rng=size, extra_edge_prob=0.4)
    return AllocationProblem(graph=graph, num_registers=8, name=f"scaling-{size}")


@pytest.fixture(scope="module")
def scaling_problems():
    return {size: _problem(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_bfpl_runtime_scaling(benchmark, scaling_problems, size):
    problem = scaling_problems[size]
    allocator = get_allocator("BFPL")
    benchmark.extra_info["vertices"] = len(problem.graph)
    benchmark.extra_info["edges"] = problem.graph.num_edges()
    benchmark(allocator.allocate, problem)


@pytest.mark.parametrize("allocator_name", ["NL", "BFPL", "GC", "LH"])
def test_allocator_runtime_on_medium_graph(benchmark, allocator_name):
    problem = _problem(400)
    allocator = get_allocator(allocator_name)
    benchmark(allocator.allocate, problem)


def test_layered_runtime_grows_subquadratically(scaling_problems):
    """Direct check of the quasi-linear growth claim (no pytest-benchmark)."""
    allocator = get_allocator("BFPL")
    timings = {}
    for size, problem in scaling_problems.items():
        start = time.perf_counter()
        allocator.allocate(problem)
        timings[size] = time.perf_counter() - start

    small, large = SIZES[0], SIZES[-1]
    work_small = len(scaling_problems[small].graph) + scaling_problems[small].graph.num_edges()
    work_large = len(scaling_problems[large].graph) + scaling_problems[large].graph.num_edges()
    work_ratio = work_large / work_small
    time_ratio = timings[large] / max(timings[small], 1e-6)
    # Allow a generous slack factor over the linear prediction; a quadratic
    # implementation would blow well past it.
    assert time_ratio <= work_ratio * 6, (timings, work_ratio, time_ratio)
