"""Section 4 complexity claim — layered allocation scales as O(R · (|V| + |E|)).

Benchmarks the BFPL allocator (and the baselines, for contrast) on random
chordal graphs of increasing size, and checks that the layered allocator's
runtime grows roughly linearly in |V| + |E| (within a generous factor, since
constant factors and Python overheads dominate at small sizes).

Also reports the before/after throughput of the NL allocator's hot loop: the
seed implementation re-materialized ``graph.subgraph(candidates)`` and re-ran
a maximum-cardinality search every round (``shared_peo=False``, kept as the
reference), whereas the current fast path computes one PEO per problem and
runs Frank's algorithm over a candidate mask.  The high-pressure interval
suite (register pressure ≫ R, so all ``R`` rounds execute on a large
candidate set) is where the per-round asymptotics dominate.
"""

import time

import pytest

from repro.alloc import get_allocator
from repro.alloc.layered import LayeredOptimalAllocator
from repro.alloc.problem import AllocationProblem
from repro.graphs.generators import random_chordal_graph, random_interval_graph

SIZES = (100, 200, 400, 800)

#: high-pressure chordal instances (|V|, span, max interval length); the last
#: entry is the largest suite, used by the R=16 speedup acceptance check.
PRESSURE_SIZES = (300, 600, 1000)


def _problem(size: int) -> AllocationProblem:
    graph = random_chordal_graph(size, rng=size, extra_edge_prob=0.4)
    return AllocationProblem(graph=graph, num_registers=8, name=f"scaling-{size}")


def _pressure_problem(size: int, num_registers: int = 16) -> AllocationProblem:
    """A dense interval-graph instance whose pressure far exceeds R."""
    graph, _ = random_interval_graph(size, rng=size, span=size, max_length=size // 10)
    return AllocationProblem(graph=graph, num_registers=num_registers, name=f"pressure-{size}")


def _best_time(allocator, problem_factory, repeats: int = 3) -> float:
    """Best-of-N wall time of one allocation on a fresh problem each run."""
    best = float("inf")
    for _ in range(repeats):
        problem = problem_factory()
        start = time.perf_counter()
        allocator.allocate(problem)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def scaling_problems():
    return {size: _problem(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_bfpl_runtime_scaling(benchmark, scaling_problems, size):
    problem = scaling_problems[size]
    allocator = get_allocator("BFPL")
    benchmark.extra_info["vertices"] = len(problem.graph)
    benchmark.extra_info["edges"] = problem.graph.num_edges()
    benchmark(allocator.allocate, problem)


@pytest.mark.parametrize("allocator_name", ["NL", "BFPL", "GC", "LH"])
def test_allocator_runtime_on_medium_graph(benchmark, allocator_name):
    problem = _problem(400)
    allocator = get_allocator(allocator_name)
    benchmark(allocator.allocate, problem)


def test_layered_runtime_grows_subquadratically(scaling_problems):
    """Direct check of the quasi-linear growth claim (no pytest-benchmark)."""
    allocator = get_allocator("BFPL")
    timings = {}
    for size, problem in scaling_problems.items():
        start = time.perf_counter()
        allocator.allocate(problem)
        timings[size] = time.perf_counter() - start

    small, large = SIZES[0], SIZES[-1]
    work_small = len(scaling_problems[small].graph) + scaling_problems[small].graph.num_edges()
    work_large = len(scaling_problems[large].graph) + scaling_problems[large].graph.num_edges()
    work_ratio = work_large / work_small
    time_ratio = timings[large] / max(timings[small], 1e-6)
    # Allow a generous slack factor over the linear prediction; a quadratic
    # implementation would blow well past it.
    assert time_ratio <= work_ratio * 6, (timings, work_ratio, time_ratio)


# ---------------------------------------------------------------------- #
# NL hot loop: seed (per-round subgraph + MCS) vs shared-PEO mask path
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("size", PRESSURE_SIZES)
@pytest.mark.parametrize("mode", ["seed-subgraph", "shared-peo"])
def test_nl_hot_loop_throughput(benchmark, mode, size):
    """Before/after layered-allocator throughput on the pressure suite."""
    allocator = LayeredOptimalAllocator(shared_peo=(mode == "shared-peo"))
    problem = _pressure_problem(size)
    benchmark.extra_info["vertices"] = len(problem.graph)
    benchmark.extra_info["edges"] = problem.graph.num_edges()
    benchmark.extra_info["max_pressure"] = problem.max_pressure
    graph = problem.graph

    def run():
        # Fresh problem (so the shared-PEO path pays its PEO every round)
        # around a pre-built graph (so generation stays out of the timing).
        allocator.allocate(AllocationProblem(graph=graph, num_registers=16))

    benchmark(run)


def test_nl_shared_peo_speedup_at_r16():
    """Acceptance check: ≥3× NL speedup at R=16 on the largest pressure suite.

    Both paths are timed on fresh problems (so the fast path's one-off PEO
    computation is *included* in its time) and must agree on the spill cost.
    """
    size = PRESSURE_SIZES[-1]
    legacy = LayeredOptimalAllocator(shared_peo=False)
    fast = LayeredOptimalAllocator(shared_peo=True)

    legacy_cost = legacy.allocate(_pressure_problem(size)).spill_cost
    fast_cost = fast.allocate(_pressure_problem(size)).spill_cost
    assert fast_cost == pytest.approx(legacy_cost)

    legacy_time = _best_time(legacy, lambda: _pressure_problem(size))
    fast_time = _best_time(fast, lambda: _pressure_problem(size))
    speedup = legacy_time / max(fast_time, 1e-9)
    print(f"\nNL R=16 |V|={size}: seed {legacy_time * 1e3:.1f} ms, "
          f"shared-PEO {fast_time * 1e3:.1f} ms, speedup {speedup:.2f}x")
    assert speedup >= 3.0, (legacy_time, fast_time, speedup)
