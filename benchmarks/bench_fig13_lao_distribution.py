"""Figure 13 — distribution of normalized costs, lao-kernels stand-in on ARMv7."""

from benchmarks.conftest import publish
from repro.experiments.figures import figure13


def test_figure13(benchmark, lao_armv7_records):
    result = benchmark.pedantic(
        lambda: figure13(records=lao_armv7_records), rounds=1, iterations=1
    )
    publish(result)

    for allocator, by_count in result.distributions.items():
        for summary in by_count.values():
            if summary.count:
                assert summary.minimum >= 1.0 - 1e-9
