"""Figure 8 — mean normalized allocation cost, SPEC CPU2000int stand-in on ST231.

Regenerates the series of the paper's Figure 8: GC / NL / FPL / BL / BFPL /
Optimal, register counts 1–32, costs normalized to the optimal allocation.
The heavy sweep is shared (session fixture); the benchmark measures the
normalization/aggregation step and asserts the paper's qualitative shape.
"""

import math

from benchmarks.conftest import publish
from repro.experiments.figures import figure8


def test_figure8(benchmark, spec_st231_records):
    result = benchmark.pedantic(
        lambda: figure8(records=spec_st231_records), rounds=1, iterations=1
    )
    publish(result)

    series = result.series
    for allocator, by_count in series.items():
        for count, value in by_count.items():
            if not math.isnan(value):
                assert value >= 1.0 - 1e-9, f"{allocator} beat the optimum at R={count}"
    # Shape check: the layered family stays close to optimal on average.
    layered_means = [
        sum(v for v in series[name].values() if not math.isnan(v)) / len(series[name])
        for name in ("BL", "FPL", "BFPL")
    ]
    assert all(mean <= 1.25 for mean in layered_means)
