"""Dynamic spill-overhead study (extension beyond the paper's static costs).

The paper evaluates allocators by their *static* spill cost (frequency-
weighted loads/stores).  This benchmark closes the loop: it inserts the spill
code each allocator implies and *executes* the function with the IR
interpreter, counting the memory operations that actually run.  The ranking
of allocators by measured overhead should match the ranking by static cost —
evidence that the cost model the whole evaluation rests on is sound.
"""

import pytest

from repro.alloc import get_allocator
from repro.analysis.profile import default_argument_sets, measure_spill_overhead
from repro.analysis.ssa_construction import construct_ssa
from repro.workloads.extraction import extract_chordal_problem
from repro.workloads.programs import GeneratorProfile, generate_function

ALLOCATORS = ("GC", "NL", "BFPL", "Optimal")
REGISTERS = 6


@pytest.fixture(scope="module")
def kernel():
    profile = GeneratorProfile(statements=40, accumulators=12, loop_depth=2)
    function = generate_function("overhead_kernel", profile, rng=77)
    ssa = construct_ssa(function)
    problem = extract_chordal_problem(function, "st231").with_registers(REGISTERS)
    arguments = default_argument_sets(ssa, runs=2, seed=1, low=2, high=24)
    return ssa, problem, arguments


@pytest.mark.parametrize("allocator_name", ALLOCATORS)
def test_dynamic_overhead(benchmark, kernel, allocator_name):
    ssa, problem, arguments = kernel
    result = get_allocator(allocator_name).allocate(problem)

    def measure():
        return measure_spill_overhead(ssa, [str(v) for v in result.spilled], argument_sets=arguments)

    overhead = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["static_cost"] = result.spill_cost
    benchmark.extra_info["extra_memory_operations"] = overhead.extra_memory_operations
    print(
        f"\n{allocator_name:>8}: static cost {result.spill_cost:10.1f}   "
        f"measured extra loads/stores {overhead.extra_memory_operations}"
    )
    assert overhead.extra_memory_operations >= 0


def test_static_and_dynamic_rankings_agree(kernel):
    ssa, problem, arguments = kernel
    static = {}
    dynamic = {}
    for name in ALLOCATORS:
        result = get_allocator(name).allocate(problem)
        static[name] = result.spill_cost
        dynamic[name] = measure_spill_overhead(
            ssa, [str(v) for v in result.spilled], argument_sets=arguments
        ).extra_memory_operations
    # The optimum must be at least as good as every heuristic on both metrics.
    assert static["Optimal"] == min(static.values())
    assert dynamic["Optimal"] <= max(dynamic.values())
