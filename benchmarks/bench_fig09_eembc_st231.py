"""Figure 9 — mean normalized allocation cost, EEMBC stand-in on ST231."""

import math

from benchmarks.conftest import publish
from repro.experiments.figures import figure9


def test_figure9(benchmark, eembc_st231_records):
    result = benchmark.pedantic(
        lambda: figure9(records=eembc_st231_records), rounds=1, iterations=1
    )
    publish(result)

    series = result.series
    for allocator, by_count in series.items():
        for count, value in by_count.items():
            if not math.isnan(value):
                assert value >= 1.0 - 1e-9
    # BFPL (both improvements) never trails plain NL on average.
    bfpl = [v for v in series["BFPL"].values() if not math.isnan(v)]
    nl = [v for v in series["NL"].values() if not math.isnan(v)]
    assert sum(bfpl) / len(bfpl) <= sum(nl) / len(nl) + 1e-6
