"""Ablation — contribution of the biasing and fixed-point improvements.

Not a figure of the paper, but the paper's Section 4 presents the two
improvements separately; this bench quantifies each one's contribution over
the plain layered allocator (NL) on the EEMBC stand-in.
"""

import math
import os

from benchmarks.conftest import bench_seed, publish
from repro.experiments.figures import ablation_study


def test_ablation(benchmark):
    scale = 0.35 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    result = benchmark.pedantic(
        lambda: ablation_study(
            suite="eembc", seed=bench_seed(), scale=scale, register_counts=(2, 4, 8, 16), verify=False
        ),
        rounds=1,
        iterations=1,
    )
    publish(result)

    series = result.series
    for count in (2, 4, 8, 16):
        nl = series["NL"][count]
        fpl = series["FPL"][count]
        bl = series["BL"][count]
        bfpl = series["BFPL"][count]
        if any(math.isnan(v) for v in (nl, fpl, bl, bfpl)):
            continue
        # The fixed point never hurts; the full combination never trails BL.
        assert fpl <= nl + 1e-6
        assert bfpl <= bl + 1e-6
