"""Figure 11 — distribution of normalized costs, SPEC CPU2000int stand-in on ST231."""

from benchmarks.conftest import publish
from repro.experiments.figures import figure11


def test_figure11(benchmark, spec_st231_records):
    result = benchmark.pedantic(
        lambda: figure11(records=spec_st231_records), rounds=1, iterations=1
    )
    publish(result)

    distributions = result.distributions
    assert set(distributions) == {"GC", "NL", "FPL", "BL", "BFPL"}
    for allocator, by_count in distributions.items():
        for count, summary in by_count.items():
            if summary.count == 0:
                continue
            assert summary.minimum >= 1.0 - 1e-9
            assert summary.median <= summary.maximum
    # The paper highlights GC's higher variability relative to BFPL: compare
    # the worst-case (maximum) normalized cost across register counts.
    gc_worst = max(s.maximum for s in distributions["GC"].values() if s.count)
    bfpl_worst = max(s.maximum for s in distributions["BFPL"].values() if s.count)
    assert bfpl_worst <= gc_worst + 0.5
