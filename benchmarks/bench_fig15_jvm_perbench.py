"""Figure 15 — per-benchmark normalized cost at 6 registers (JVM stand-in)."""

import math

from benchmarks.conftest import publish
from repro.experiments.figures import figure15


def test_figure15(benchmark, jvm_records):
    result = benchmark.pedantic(
        lambda: figure15(records=jvm_records, register_count=6), rounds=1, iterations=1
    )
    publish(result)

    assert result.series, "expected one row per JVM benchmark program"
    for program, by_allocator in result.series.items():
        for allocator, value in by_allocator.items():
            if not math.isnan(value):
                assert value >= 1.0 - 1e-9, f"{allocator} beat the optimum on {program}"
    # LH wins (or ties) against the linear scan on a majority of benchmarks.
    wins = sum(
        1
        for by_allocator in result.series.values()
        if not math.isnan(by_allocator["LH"])
        and not math.isnan(by_allocator["LS"])
        and by_allocator["LH"] <= by_allocator["LS"] + 1e-6
    )
    assert wins >= len(result.series) // 2
