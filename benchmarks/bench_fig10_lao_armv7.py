"""Figure 10 — mean normalized allocation cost, lao-kernels stand-in on ARMv7."""

import math

from benchmarks.conftest import publish
from repro.experiments.figures import figure10


def test_figure10(benchmark, lao_armv7_records):
    result = benchmark.pedantic(
        lambda: figure10(records=lao_armv7_records), rounds=1, iterations=1
    )
    publish(result)

    series = result.series
    for allocator, by_count in series.items():
        for count, value in by_count.items():
            if not math.isnan(value):
                assert value >= 1.0 - 1e-9
    # The fixed-point phase can only improve on the plain layered allocation.
    for count, nl_value in series["NL"].items():
        fpl_value = series["FPL"][count]
        if not (math.isnan(nl_value) or math.isnan(fpl_value)):
            assert fpl_value <= nl_value + 1e-6
