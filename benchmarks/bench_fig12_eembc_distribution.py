"""Figure 12 — distribution of normalized costs, EEMBC stand-in on ST231."""

from benchmarks.conftest import publish
from repro.experiments.figures import figure12


def test_figure12(benchmark, eembc_st231_records):
    result = benchmark.pedantic(
        lambda: figure12(records=eembc_st231_records), rounds=1, iterations=1
    )
    publish(result)

    for allocator, by_count in result.distributions.items():
        for summary in by_count.values():
            if summary.count:
                assert summary.minimum >= 1.0 - 1e-9
                assert summary.p25 <= summary.p75
