"""Shared fixtures for the benchmark harness.

Every figure of the paper is regenerated from the records produced by one
sweep per benchmark suite; the sweeps are session-scoped fixtures so the
expensive allocator runs are paid once and reused by all dependent figures
(e.g. Figure 8 and Figure 11 share the SPEC CPU2000int records, exactly as
in the paper).

Environment variables:

``REPRO_BENCH_SCALE``
    Multiplier on the per-suite corpus scale (default 1.0).  Use ``2.0`` or
    more for a full-size run, ``0.5`` for a quick smoke run.
``REPRO_BENCH_MAX_INSTANCES``
    Hard cap on the number of functions per suite (default: suite-specific).
``REPRO_BENCH_SEED``
    Corpus seed (default 2013).

The rendered figures are written to ``benchmarks/results/*.txt`` and printed,
so they land in ``bench_output.txt`` alongside the timing tables.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro.experiments.figures import (
    CHORDAL_ALLOCATORS,
    CHORDAL_REGISTER_COUNTS,
    GENERAL_ALLOCATORS,
    GENERAL_REGISTER_COUNTS,
    _run_suite,
)
from repro.experiments.runner import InstanceRecord

RESULTS_DIR = Path(__file__).parent / "results"

#: default (scale, max_instances) per suite — sized so the whole benchmark
#: suite completes in a few minutes on a laptop while still covering every
#: benchmark program of every suite.
SUITE_DEFAULTS = {
    "spec2000int": (0.5, None),
    "eembc": (0.75, None),
    "lao_kernels": (1.0, None),
    "specjvm98": (1.0, None),
}


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2013"))


def bench_scale(suite: str) -> float:
    base, _ = SUITE_DEFAULTS[suite]
    return base * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_max_instances(suite: str) -> Optional[int]:
    override = os.environ.get("REPRO_BENCH_MAX_INSTANCES")
    if override:
        return int(override)
    default = SUITE_DEFAULTS[suite][1]
    return default


def run_suite_records(
    suite: str,
    target: str,
    allocators: Sequence[str],
    register_counts: Sequence[int],
) -> List[InstanceRecord]:
    """Run one suite sweep with the benchmark-level configuration."""
    return _run_suite(
        suite,
        target,
        allocators,
        register_counts,
        seed=bench_seed(),
        scale=bench_scale(suite),
        max_instances=bench_max_instances(suite),
        verify=False,
    )


def publish(figure_result, capsys=None) -> None:
    """Write a figure's rendered table to benchmarks/results and stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{figure_result.figure}.txt"
    path.write_text(figure_result.rendered + "\n", encoding="utf-8")
    print("\n" + figure_result.rendered)


# ---------------------------------------------------------------------- #
# session-scoped record caches (one sweep per paper study)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def spec_st231_records() -> List[InstanceRecord]:
    """SPEC CPU2000int stand-in on ST231 (Figures 8 and 11)."""
    return run_suite_records("spec2000int", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS)


@pytest.fixture(scope="session")
def eembc_st231_records() -> List[InstanceRecord]:
    """EEMBC stand-in on ST231 (Figures 9 and 12)."""
    return run_suite_records("eembc", "st231", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS)


@pytest.fixture(scope="session")
def lao_armv7_records() -> List[InstanceRecord]:
    """lao-kernels stand-in on ARMv7 (Figures 10 and 13)."""
    return run_suite_records("lao_kernels", "armv7-a8", CHORDAL_ALLOCATORS, CHORDAL_REGISTER_COUNTS)


@pytest.fixture(scope="session")
def jvm_records() -> List[InstanceRecord]:
    """SPEC JVM98 stand-in on the JikesRVM register file (Figures 14 and 15)."""
    register_counts = tuple(sorted(set(GENERAL_REGISTER_COUNTS) | {6}))
    return run_suite_records("specjvm98", "jikesrvm-ia32", GENERAL_ALLOCATORS, register_counts)
