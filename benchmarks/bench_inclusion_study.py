"""Section 2.3 companion study — optimal spill-set inclusion across register counts.

The paper motivates layered (incremental *allocation*) with the observation
that optimal allocations are almost monotone in the register count (99.83% of
SPEC JVM98 methods).  This benchmark measures the same rate on the synthetic
chordal corpus with deterministic tie-breaking.
"""

import os

from benchmarks.conftest import bench_seed, publish
from repro.experiments.figures import inclusion_study


def test_inclusion_study(benchmark):
    scale = 0.6 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    result = benchmark.pedantic(
        lambda: inclusion_study(suite="lao_kernels", seed=bench_seed(), scale=scale),
        rounds=1,
        iterations=1,
    )
    publish(result)

    summary = result.series["summary"]
    assert summary["pairs"] > 0
    # The paper reports 99.83%; the synthetic corpus with unique optima should
    # also show a clearly dominant inclusion rate.
    assert summary["rate"] >= 0.9
