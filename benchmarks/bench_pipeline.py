"""Pipeline benchmarks: compiler substrate plus the pass-pipeline engine.

Not a paper figure.  The first half measures the cost of the surrounding
compiler substrate (SSA construction, liveness, extraction) so the allocator
timings of ``bench_scaling`` can be put in context (the paper's JIT argument
is that allocation must stay a small fraction of compile time).  The second
half benchmarks the :class:`repro.pipeline.Pipeline` engine itself: a full
end-to-end run, a per-stage timing breakdown, and the warm-vs-cold
allocate-stage cache — including the acceptance assertion that a warm batch
rerun performs **zero** allocate-stage calls.
"""

import pytest

from repro.alloc.base import register_allocator
from repro.alloc.layered import LayeredOptimalAllocator
from repro.analysis.interference import build_interference_graph
from repro.analysis.liveness import liveness
from repro.analysis.ssa_construction import construct_ssa
from repro.graphs.stable_set import maximum_weighted_stable_set
from repro.graphs.generators import random_chordal_graph
from repro.pipeline import Pipeline
from repro.workloads.extraction import extract_chordal_problem
from repro.workloads.programs import GeneratorProfile, generate_function


@pytest.fixture(scope="module")
def medium_function():
    profile = GeneratorProfile(statements=120, accumulators=16, loop_depth=3)
    return generate_function("bench_medium", profile, rng=2013)


@pytest.fixture(scope="module")
def medium_ssa(medium_function):
    return construct_ssa(medium_function)


def test_ssa_construction(benchmark, medium_function):
    benchmark(construct_ssa, medium_function)


def test_liveness_analysis(benchmark, medium_ssa):
    benchmark(liveness, medium_ssa)


def test_interference_graph_construction(benchmark, medium_ssa):
    benchmark(build_interference_graph, medium_ssa)


def test_full_extraction_pipeline(benchmark, medium_function):
    benchmark(extract_chordal_problem, medium_function, "st231")


def test_franks_algorithm_on_large_chordal_graph(benchmark):
    graph = random_chordal_graph(1000, rng=7, extra_edge_prob=0.4)
    benchmark(maximum_weighted_stable_set, graph)


# ---------------------------------------------------------------------- #
# pass-pipeline engine benchmarks
# ---------------------------------------------------------------------- #
def _batch(count=8, statements=60, accumulators=10):
    return [
        generate_function(
            f"bench_fn{i}", GeneratorProfile(statements=statements, accumulators=accumulators), rng=i
        )
        for i in range(count)
    ]


def test_engine_end_to_end_single_function(benchmark, medium_function):
    pipe = Pipeline.from_spec("NL", target="st231", registers=8)
    context = benchmark(pipe.run, medium_function)
    assert context.report is not None and context.report.feasible


def test_engine_per_stage_timing_breakdown(medium_function, capsys):
    """Report where the wall time goes, stage by stage (not a timing assert)."""
    pipe = Pipeline.from_spec("NL", target="st231", registers=8)
    context = pipe.run(medium_function)
    total = sum(context.timings.values()) or 1.0
    with capsys.disabled():
        print("\nper-stage timing breakdown (NL @ st231, R=8):")
        for stage, seconds in context.timings.items():
            print(f"  {stage:<14} {seconds * 1e3:8.3f} ms  {100 * seconds / total:5.1f}%")
    assert set(context.timings) == set(pipe.stages)
    assert all(seconds >= 0.0 for seconds in context.timings.values())


def test_engine_warm_vs_cold_allocate_cache(tmp_path, capsys):
    """Warm batch reruns must serve every allocate stage from the store."""

    class _CountingBenchNL(LayeredOptimalAllocator):
        name = "bench-counting-NL"
        calls = 0

        def allocate(self, problem):
            type(self).calls += 1
            return super().allocate(problem)

    register_allocator("bench-counting-NL", _CountingBenchNL)
    functions = _batch()
    store_path = str(tmp_path / "bench_cache.sqlite")

    import time

    with Pipeline.from_spec(
        "bench-counting-NL", target="st231", registers=6, store=store_path
    ) as pipe:
        started = time.perf_counter()
        cold = pipe.run_many(functions)
        cold_seconds = time.perf_counter() - started
        assert _CountingBenchNL.calls == len(functions)

        started = time.perf_counter()
        warm = pipe.run_many(functions)
        warm_seconds = time.perf_counter() - started

    # The acceptance assertion: zero allocate-stage calls on the warm rerun.
    assert _CountingBenchNL.calls == len(functions), (
        "warm batch rerun invoked the allocator "
        f"{_CountingBenchNL.calls - len(functions)} time(s)"
    )
    assert all(c.stage_stats["allocate"]["cache"] == "hit" for c in warm)
    assert [c.rewritten_ir() for c in cold] == [c.rewritten_ir() for c in warm]
    cold_alloc = sum(c.timings["allocate"] for c in cold)
    warm_alloc = sum(c.timings["allocate"] for c in warm)
    with capsys.disabled():
        print(
            f"\nallocate-stage cache: cold {cold_seconds * 1e3:.1f} ms total "
            f"({cold_alloc * 1e3:.1f} ms allocating), warm {warm_seconds * 1e3:.1f} ms "
            f"({warm_alloc * 1e3:.1f} ms serving hits)"
        )


def test_engine_batch_throughput(benchmark):
    functions = _batch(count=4, statements=40, accumulators=8)
    pipe = Pipeline.from_spec("BFPL", target="st231", registers=6, verify=False)
    contexts = benchmark(pipe.run_many, functions)
    assert len(contexts) == len(functions)
