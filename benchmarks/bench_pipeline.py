"""Compiler-substrate micro-benchmarks: SSA construction, liveness, extraction.

Not a paper figure; these measure the cost of the surrounding pipeline so the
allocator timings of ``bench_scaling`` can be put in context (the paper's JIT
argument is that allocation must stay a small fraction of compile time).
"""

import pytest

from repro.analysis.interference import build_interference_graph
from repro.analysis.liveness import liveness
from repro.analysis.ssa_construction import construct_ssa
from repro.graphs.stable_set import maximum_weighted_stable_set
from repro.graphs.generators import random_chordal_graph
from repro.workloads.extraction import extract_chordal_problem
from repro.workloads.programs import GeneratorProfile, generate_function


@pytest.fixture(scope="module")
def medium_function():
    profile = GeneratorProfile(statements=120, accumulators=16, loop_depth=3)
    return generate_function("bench_medium", profile, rng=2013)


@pytest.fixture(scope="module")
def medium_ssa(medium_function):
    return construct_ssa(medium_function)


def test_ssa_construction(benchmark, medium_function):
    benchmark(construct_ssa, medium_function)


def test_liveness_analysis(benchmark, medium_ssa):
    benchmark(liveness, medium_ssa)


def test_interference_graph_construction(benchmark, medium_ssa):
    benchmark(build_interference_graph, medium_ssa)


def test_full_extraction_pipeline(benchmark, medium_function):
    benchmark(extract_chordal_problem, medium_function, "st231")


def test_franks_algorithm_on_large_chordal_graph(benchmark):
    graph = random_chordal_graph(1000, rng=7, extra_edge_prob=0.4)
    benchmark(maximum_weighted_stable_set, graph)
