"""Pipeline benchmarks: compiler substrate plus the pass-pipeline engine.

Not a paper figure.  The first half measures the cost of the surrounding
compiler substrate (SSA construction, liveness, extraction) so the allocator
timings of ``bench_scaling`` can be put in context (the paper's JIT argument
is that allocation must stay a small fraction of compile time).  The second
half benchmarks the :class:`repro.pipeline.Pipeline` engine itself: a full
end-to-end run, a per-stage timing breakdown, and the warm-vs-cold
allocate-stage cache — including the acceptance assertion that a warm batch
rerun performs **zero** allocate-stage calls.

The file doubles as the **dense-kernel perf-smoke gate**::

    PYTHONPATH=src python benchmarks/bench_pipeline.py \
        --stages liveness,interference --min-speedup 2.0

times the named front-end stages on a fixed-seed large function under the
dense bitset kernel and the set-based reference, fails unless the dense
kernel clears the speedup floor, and asserts the two kernels produce
byte-identical problem digests and interchangeable warm-store cells (the
same check ``test_dense_front_end_speedup_at_large_scale`` runs under
pytest with the conservative 2x CI floor; the local target at the largest
shipped scale is >= 3x).
"""

import pytest

from repro.alloc.base import register_allocator
from repro.alloc.layered import LayeredOptimalAllocator
from repro.analysis.interference import build_interference_graph
from repro.analysis.liveness import liveness
from repro.analysis.ssa_construction import construct_ssa
from repro.graphs.stable_set import maximum_weighted_stable_set
from repro.graphs.generators import random_chordal_graph
from repro.pipeline import Pipeline
from repro.workloads.extraction import extract_chordal_problem
from repro.workloads.programs import GeneratorProfile, generate_function


@pytest.fixture(scope="module")
def medium_function():
    profile = GeneratorProfile(statements=120, accumulators=16, loop_depth=3)
    return generate_function("bench_medium", profile, rng=2013)


@pytest.fixture(scope="module")
def medium_ssa(medium_function):
    return construct_ssa(medium_function)


def test_ssa_construction(benchmark, medium_function):
    benchmark(construct_ssa, medium_function)


def test_liveness_analysis(benchmark, medium_ssa):
    benchmark(liveness, medium_ssa)


def test_interference_graph_construction(benchmark, medium_ssa):
    benchmark(build_interference_graph, medium_ssa)


def test_full_extraction_pipeline(benchmark, medium_function):
    benchmark(extract_chordal_problem, medium_function, "st231")


def test_franks_algorithm_on_large_chordal_graph(benchmark):
    graph = random_chordal_graph(1000, rng=7, extra_edge_prob=0.4)
    benchmark(maximum_weighted_stable_set, graph)


# ---------------------------------------------------------------------- #
# pass-pipeline engine benchmarks
# ---------------------------------------------------------------------- #
def _batch(count=8, statements=60, accumulators=10):
    return [
        generate_function(
            f"bench_fn{i}", GeneratorProfile(statements=statements, accumulators=accumulators), rng=i
        )
        for i in range(count)
    ]


def test_engine_end_to_end_single_function(benchmark, medium_function):
    pipe = Pipeline.from_spec("NL", target="st231", registers=8)
    context = benchmark(pipe.run, medium_function)
    assert context.report is not None and context.report.feasible


def test_engine_per_stage_timing_breakdown(medium_function, capsys):
    """Report where the wall time goes, stage by stage (not a timing assert)."""
    pipe = Pipeline.from_spec("NL", target="st231", registers=8)
    context = pipe.run(medium_function)
    total = sum(context.timings.values()) or 1.0
    with capsys.disabled():
        print("\nper-stage timing breakdown (NL @ st231, R=8):")
        for stage, seconds in context.timings.items():
            print(f"  {stage:<14} {seconds * 1e3:8.3f} ms  {100 * seconds / total:5.1f}%")
    assert set(context.timings) == set(pipe.stages)
    assert all(seconds >= 0.0 for seconds in context.timings.values())


def test_engine_warm_vs_cold_allocate_cache(tmp_path, capsys):
    """Warm batch reruns must serve every allocate stage from the store."""

    class _CountingBenchNL(LayeredOptimalAllocator):
        name = "bench-counting-NL"
        calls = 0

        def allocate(self, problem):
            type(self).calls += 1
            return super().allocate(problem)

    register_allocator("bench-counting-NL", _CountingBenchNL)
    functions = _batch()
    store_path = str(tmp_path / "bench_cache.sqlite")

    import time

    with Pipeline.from_spec(
        "bench-counting-NL", target="st231", registers=6, store=store_path
    ) as pipe:
        started = time.perf_counter()
        cold = pipe.run_many(functions)
        cold_seconds = time.perf_counter() - started
        assert _CountingBenchNL.calls == len(functions)

        started = time.perf_counter()
        warm = pipe.run_many(functions)
        warm_seconds = time.perf_counter() - started

    # The acceptance assertion: zero allocate-stage calls on the warm rerun.
    assert _CountingBenchNL.calls == len(functions), (
        "warm batch rerun invoked the allocator "
        f"{_CountingBenchNL.calls - len(functions)} time(s)"
    )
    assert all(c.stage_stats["allocate"]["cache"] == "hit" for c in warm)
    assert [c.rewritten_ir() for c in cold] == [c.rewritten_ir() for c in warm]
    cold_alloc = sum(c.timings["allocate"] for c in cold)
    warm_alloc = sum(c.timings["allocate"] for c in warm)
    with capsys.disabled():
        print(
            f"\nallocate-stage cache: cold {cold_seconds * 1e3:.1f} ms total "
            f"({cold_alloc * 1e3:.1f} ms allocating), warm {warm_seconds * 1e3:.1f} ms "
            f"({warm_alloc * 1e3:.1f} ms serving hits)"
        )


def test_engine_batch_throughput(benchmark):
    functions = _batch(count=4, statements=40, accumulators=8)
    pipe = Pipeline.from_spec("BFPL", target="st231", registers=6, verify=False)
    contexts = benchmark(pipe.run_many, functions)
    assert len(contexts) == len(functions)


# ---------------------------------------------------------------------- #
# dense bitset kernel: perf-smoke gate + equivalence assertions
# ---------------------------------------------------------------------- #
#: the largest shipped benchmark scale (the acceptance scale for the dense
#: kernel's >= 3x local speedup target).
LARGE_PROFILE = dict(statements=1000, accumulators=80, loop_depth=4)
FIXED_SEED = 2013
DENSE_STAGES = ("liveness", "interference")


def _front_end_spec(dense):
    from repro.pipeline.spec import PipelineSpec

    # Always run the full front-end chain (the digest-parity check needs the
    # packaged problem); ``--stages`` only selects which timings are summed.
    return PipelineSpec(
        target="st231", registers=8, dense=dense, stages=(*DENSE_STAGES, "extract")
    )


def _time_stages(pipe, function, stages, repeat):
    """Best-of-``repeat`` sum of the named stage timings (and the last context)."""
    best = float("inf")
    context = None
    for _ in range(repeat):
        context = pipe.run(function)
        elapsed = sum(context.timings[stage] for stage in stages)
        best = min(best, elapsed)
    return best, context


def compare_dense_kernel(
    stages=DENSE_STAGES,
    statements=LARGE_PROFILE["statements"],
    seed=FIXED_SEED,
    repeat=3,
):
    """Measure dense vs set-based front-end stage time on one fixed function.

    Returns ``(speedup, dense_seconds, reference_seconds)`` after asserting
    the two kernels produced byte-identical problem digests and
    interchangeable warm-store cells.
    """
    import tempfile
    from pathlib import Path

    from repro.store.keys import problem_digest
    from repro.workloads.programs import GeneratorProfile

    unknown = sorted(set(stages) - set(DENSE_STAGES))
    if unknown:
        raise ValueError(
            f"unsupported --stages entries {unknown}: the dense-kernel gate "
            f"times {list(DENSE_STAGES)} (any non-empty subset)"
        )
    if not stages:
        raise ValueError("--stages must name at least one front-end stage")

    profile = GeneratorProfile(
        statements=statements,
        accumulators=max(8, statements * LARGE_PROFILE["accumulators"] // LARGE_PROFILE["statements"]),
        loop_depth=LARGE_PROFILE["loop_depth"],
    )
    function = generate_function("dense_smoke", profile, rng=seed)

    dense_seconds, dense_ctx = _time_stages(
        Pipeline(_front_end_spec(True)), function, stages, repeat
    )
    ref_seconds, ref_ctx = _time_stages(
        Pipeline(_front_end_spec(False)), function, stages, repeat
    )

    # Byte-identical store keys: the digest covers the canonical graph with
    # its weights plus the live intervals, so cells written under either
    # kernel are the same cells.
    dense_digest = problem_digest(dense_ctx.problem, target="st231")
    ref_digest = problem_digest(ref_ctx.problem, target="st231")
    assert dense_digest == ref_digest, (
        f"kernel digests diverged: dense={dense_digest} reference={ref_digest}"
    )

    # And end to end: a store warmed through the dense pipeline must serve
    # the reference pipeline without an allocator call, and vice versa.
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "kernel_swap.sqlite")
        with Pipeline.from_spec(
            "NL", target="st231", registers=8, dense=True, store=store_path
        ) as pipe:
            warmed = pipe.run(function)
        assert warmed.stage_stats["allocate"]["cache"] == "miss"
        with Pipeline.from_spec(
            "NL", target="st231", registers=8, dense=False, store=store_path
        ) as pipe:
            served = pipe.run(function)
        assert served.stage_stats["allocate"]["cache"] == "hit", (
            "set-based reference pipeline missed cells warmed by the dense kernel"
        )
        assert served.result.spilled == warmed.result.spilled

    return ref_seconds / dense_seconds, dense_seconds, ref_seconds


def test_dense_front_end_speedup_at_large_scale(capsys):
    """Dense kernel vs set-based reference at the largest shipped scale.

    Always checks digest parity and cross-kernel store-cell
    interchangeability (asserted inside the comparison).  The wall-clock
    floor — >= 2x, the conservative CI gate below the >= 3x local target —
    is only *asserted* when ``REPRO_PERF_SMOKE`` is set, so timing flakes on
    shared runners cannot fail the functional CI jobs; the dedicated
    perf-smoke job exports the variable (and additionally runs the
    ``--stages`` CLI gate).
    """
    import os

    speedup, dense_seconds, ref_seconds = compare_dense_kernel()
    with capsys.disabled():
        print(
            f"\ndense kernel on {'+'.join(DENSE_STAGES)} @ statements={LARGE_PROFILE['statements']}: "
            f"sets {ref_seconds * 1e3:.1f} ms -> dense {dense_seconds * 1e3:.1f} ms "
            f"({speedup:.2f}x)"
        )
    if os.environ.get("REPRO_PERF_SMOKE"):
        assert speedup >= 2.0, (
            f"dense kernel only {speedup:.2f}x the set-based reference "
            f"(dense {dense_seconds * 1e3:.1f} ms vs sets {ref_seconds * 1e3:.1f} ms)"
        )


# ---------------------------------------------------------------------- #
# machine-verifier overhead: check="off" must stay free, check="each" is
# the measured price of per-pass contract enforcement
# ---------------------------------------------------------------------- #
def measure_check_overhead(statements=240, seed=FIXED_SEED, repeat=3):
    """Best-of-``repeat`` full-pipeline seconds under each check mode.

    Returns ``{"off": s, "boundaries": s, "each": s, "each_overhead": ratio}``
    for one fixed-seed function through the full NL pipeline.
    """
    from repro.pipeline.spec import PipelineSpec

    profile = GeneratorProfile(statements=statements, accumulators=16, loop_depth=3)
    function = generate_function("check_overhead", profile, rng=seed)
    # One untimed warm-up run so the first measured mode does not pay the
    # process-wide warm-up (imports, code caches) the later ones skip.
    Pipeline(
        PipelineSpec(allocator="NL", target="st231", registers=6, check="each")
    ).run(function)
    import time

    results = {}
    for mode in ("off", "boundaries", "each"):
        pipe = Pipeline(
            PipelineSpec(allocator="NL", target="st231", registers=6, check=mode)
        )
        best = float("inf")
        for _ in range(repeat):
            # Wall-clock, not the sum of stage timings: the contract
            # enforcement runs *between* stages and must be part of the price.
            started = time.perf_counter()
            pipe.run(function)
            best = min(best, time.perf_counter() - started)
        results[mode] = best
    results["each_overhead"] = results["each"] / results["off"] if results["off"] else float("inf")
    return results


def test_check_mode_off_invokes_no_checkers(medium_function, monkeypatch):
    """The default ``check="off"`` pipeline must never enter the verifier.

    This is the non-flaky form of "default throughput is unchanged": the only
    new work the machine-verifier wiring could add to an ``off`` run is a
    checker invocation, so zero invocations means zero added cost beyond two
    string comparisons per run.
    """
    import repro.pipeline.engine as engine_module

    calls = []
    real = engine_module.check_pipeline_context

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(engine_module, "check_pipeline_context", counting)
    pipe = Pipeline.from_spec("NL", target="st231", registers=8)
    context = pipe.run(medium_function)
    assert context.report is not None
    assert calls == [], f"check='off' run invoked checkers {len(calls)} time(s)"

    each = Pipeline.from_spec("NL", target="st231", registers=8, check="each")
    each.run(medium_function)
    assert calls, "check='each' run never invoked the verifier"


def test_check_each_overhead_measured(capsys):
    """Report the measured per-pass enforcement price (not a timing assert)."""
    results = measure_check_overhead(statements=120, repeat=2)
    with capsys.disabled():
        print(
            f"\ncheck-mode overhead (NL @ st231): off {results['off'] * 1e3:.1f} ms, "
            f"boundaries {results['boundaries'] * 1e3:.1f} ms, "
            f"each {results['each'] * 1e3:.1f} ms ({results['each_overhead']:.2f}x)"
        )
    assert results["each"] >= 0.0 and results["off"] >= 0.0


# ---------------------------------------------------------------------- #
# telemetry: the no-op default must stay free, a live tracer is the
# measured price of full span collection
# ---------------------------------------------------------------------- #
def measure_telemetry_overhead(statements=120, seed=FIXED_SEED, repeat=3):
    """Measure pipeline seconds with the default no-op tracer vs a live one.

    Returns ``noop_seconds`` / ``enabled_seconds`` (best-of-``repeat`` full
    runs), ``spans_per_run`` (spans a traced run emits), ``per_span_seconds``
    (micro-benchmarked cost of one *no-op* span enter/exit), and
    ``noop_overhead_fraction`` — a conservative upper bound on what the
    telemetry wiring costs an untraced run: every span site priced at the
    no-op span cost, even though the hot paths guard on ``tracer.enabled``
    and skip span creation entirely.
    """
    import time

    from repro.telemetry.tracer import NULL_TRACER, Tracer, use_tracer

    profile = GeneratorProfile(statements=statements, accumulators=16, loop_depth=3)
    function = generate_function("telemetry_overhead", profile, rng=seed)
    pipe = Pipeline.from_spec("NL", target="st231", registers=6)
    pipe.run(function)  # warm-up (imports, code caches)

    def best_of(run):
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
        return best

    noop_seconds = best_of(lambda: pipe.run(function))
    tracer = Tracer()
    with use_tracer(tracer):
        enabled_seconds = best_of(lambda: pipe.run(function))
    spans_per_run = len(tracer.snapshot().events) // repeat

    iterations = 100_000
    started = time.perf_counter()
    for _ in range(iterations):
        with NULL_TRACER.span("bench"):
            pass
    per_span_seconds = (time.perf_counter() - started) / iterations

    noop_overhead_fraction = (
        per_span_seconds * spans_per_run / noop_seconds if noop_seconds else 0.0
    )
    return {
        "noop_seconds": noop_seconds,
        "enabled_seconds": enabled_seconds,
        "spans_per_run": spans_per_run,
        "per_span_seconds": per_span_seconds,
        "noop_overhead_fraction": noop_overhead_fraction,
    }


def test_default_run_touches_only_noop_tracer(medium_function, monkeypatch):
    """An untraced run must never reach a *live* tracer method.

    This is the non-flaky form of "telemetry disabled costs nothing": the
    only way the instrumentation could slow an untraced run down is by
    recording into an enabled :class:`Tracer`, so poisoning every
    ``Tracer`` recording method and running the default pipeline proves the
    ambient no-op path is the only one taken.  BFPL exercises the allocator
    phase spans, the deepest instrumentation.
    """
    from repro.telemetry import tracer as tracer_module

    def poisoned(self, *args, **kwargs):
        raise AssertionError("enabled Tracer method called during an untraced run")

    monkeypatch.setattr(tracer_module.Tracer, "span", poisoned)
    monkeypatch.setattr(tracer_module.Tracer, "count", poisoned)
    monkeypatch.setattr(tracer_module.Tracer, "gauge", poisoned)
    pipe = Pipeline.from_spec("BFPL", target="st231", registers=6)
    context = pipe.run(medium_function)
    assert context.result is not None and context.report.feasible


def test_noop_tracer_overhead_bound(capsys):
    """The no-op telemetry bound: span sites cost < 5% of an untraced run.

    Unlike the wall-clock perf gates this is asserted unconditionally — the
    measured fraction is the *micro-benchmarked* no-op span price times the
    span-site count over a full run, which holds a ~200x margin to the bound
    and does not flake on shared runners.
    """
    results = measure_telemetry_overhead(statements=120, repeat=2)
    with capsys.disabled():
        print(
            f"\ntelemetry overhead (NL @ st231): untraced {results['noop_seconds'] * 1e3:.1f} ms, "
            f"traced {results['enabled_seconds'] * 1e3:.1f} ms "
            f"({results['spans_per_run']} spans, no-op span {results['per_span_seconds'] * 1e9:.0f} ns, "
            f"no-op overhead {results['noop_overhead_fraction']:.5f})"
        )
    assert results["noop_overhead_fraction"] < 0.05


# ---------------------------------------------------------------------- #
# allocation service: submit -> result latency, cold store vs warm store
# ---------------------------------------------------------------------- #
def measure_service_latency(jobs=8, statements=60, registers=6, seed_base=0):
    """Measure end-to-end service latency over a fixed generated corpus.

    Runs an in-process :class:`~repro.service.AllocationService` (HTTP and
    all) twice over the same ``jobs`` single-function modules: once against
    an empty store (every allocation computed) and once against the store
    the first pass warmed, with a fresh queue so nothing dedupes.  Latency
    is wall-clock submit -> terminal state per job, summed.  Asserts the
    warm pass served every allocation from the cache (zero allocator
    calls) and that both passes returned byte-identical function payloads.

    Returns a dict shaped for the ``service_latency`` bench-history block
    (``*_seconds`` metrics diff as lower-is-better).
    """
    import tempfile
    import time
    from pathlib import Path

    from repro.ir.printer import print_function
    from repro.service import AllocationService, ServiceClient

    corpus = [
        print_function(
            generate_function(
                f"svc_bench{i}",
                GeneratorProfile(statements=statements, accumulators=10),
                rng=seed_base + i,
            )
        )
        for i in range(jobs)
    ]

    def one_pass(service, expect_misses):
        client = ServiceClient(service.url)
        elapsed = 0.0
        results = []
        for index, ir in enumerate(corpus):
            started = time.perf_counter()
            job_id = client.submit(
                {"ir": ir, "name": f"svc_bench{index}", "allocator": "NL", "registers": registers}
            )["job"]["id"]
            job = client.wait(job_id, timeout=120.0, poll=0.005)
            elapsed += time.perf_counter() - started
            assert job["state"] == "done", f"bench job failed: {job['error']}"
            results.append(job["result"]["functions"])
        stats = client.stats()
        assert stats["cache"]["miss"] == (jobs if expect_misses else 0), (
            f"expected {'all misses' if expect_misses else 'zero allocator calls'}, "
            f"got cache split {stats['cache']}"
        )
        return elapsed, results

    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "cells.sqlite"
        with AllocationService(store, Path(tmp) / "q_cold.sqlite", workers=2) as service:
            cold_seconds, cold_results = one_pass(service, expect_misses=True)
        # Fresh queue, warmed store: same work, zero allocator invocations.
        with AllocationService(store, Path(tmp) / "q_warm.sqlite", workers=2) as service:
            warm_seconds, warm_results = one_pass(service, expect_misses=False)

    assert warm_results == cold_results, "warm service results diverged from cold"
    return {
        "jobs": jobs,
        "statements": statements,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "mean_cold_seconds": round(cold_seconds / jobs, 6),
        "mean_warm_seconds": round(warm_seconds / jobs, 6),
    }


def test_service_latency_warm_beats_nothing_but_asserts_cache(capsys):
    """Smoke the service bench path (cache assertions, not wall-clock)."""
    results = measure_service_latency(jobs=3, statements=30)
    with capsys.disabled():
        print(
            f"\nservice submit->result latency ({results['jobs']} jobs): "
            f"cold {results['cold_seconds'] * 1e3:.1f} ms, "
            f"warm {results['warm_seconds'] * 1e3:.1f} ms"
        )
    assert results["cold_seconds"] > 0 and results["warm_seconds"] > 0


def main(argv=None):
    """The ``--stages`` CLI used by the CI perf-smoke job."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Dense-kernel perf smoke: time front-end stages under both "
        "kernels, assert the speedup floor and digest/store parity."
    )
    parser.add_argument(
        "--stages",
        default=",".join(DENSE_STAGES),
        help="comma-separated front-end stages to time (default: liveness,interference)",
    )
    parser.add_argument("--statements", type=int, default=LARGE_PROFILE["statements"])
    parser.add_argument("--seed", type=int, default=FIXED_SEED)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--service",
        action="store_true",
        help=(
            "additionally measure allocation-service submit->result latency "
            "(cold store vs warm store over HTTP) and include it in the "
            "--json/--append-history payload as 'service_latency'"
        ),
    )
    parser.add_argument(
        "--service-jobs", type=int, default=8, help="jobs per service latency pass"
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "additionally write the stage timings (checker off) and the "
            "measured check='each' overhead to PATH (a flat payload; see "
            "--append-history for the committed trajectory format)"
        ),
    )
    parser.add_argument(
        "--append-history",
        default=None,
        metavar="PATH",
        help=(
            "append the measured payload as a dated entry to a "
            "repro-bench-history file (the committed perf trajectory, "
            "BENCH_pipeline.json; compare entries with `repro-alloc bench-diff`)"
        ),
    )
    args = parser.parse_args(argv)

    stages = tuple(s.strip() for s in args.stages.split(",") if s.strip())
    try:
        speedup, dense_seconds, ref_seconds = compare_dense_kernel(
            stages=stages, statements=args.statements, seed=args.seed, repeat=args.repeat
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"stages={','.join(stages)} statements={args.statements} seed={args.seed}: "
        f"sets {ref_seconds * 1e3:.1f} ms -> dense {dense_seconds * 1e3:.1f} ms "
        f"({speedup:.2f}x, floor {args.min_speedup:.1f}x)"
    )
    print("digest parity: ok; warm-store cells interchangeable across kernels: ok")

    service_latency = None
    if args.service:
        service_latency = measure_service_latency(jobs=args.service_jobs)
        print(
            f"service latency ({service_latency['jobs']} jobs over HTTP): "
            f"cold {service_latency['cold_seconds'] * 1e3:.1f} ms total, "
            f"warm {service_latency['warm_seconds'] * 1e3:.1f} ms total "
            f"(warm pass: zero allocator calls, byte-identical results)"
        )

    if args.json or args.append_history:
        import json

        from repro.pipeline.spec import PipelineSpec
        from repro.workloads.programs import GeneratorProfile

        # Per-stage breakdown of one full run with the checker off (the
        # committed baseline), plus the measured check="each" and telemetry
        # prices.
        profile = GeneratorProfile(
            statements=args.statements,
            accumulators=max(8, args.statements * LARGE_PROFILE["accumulators"] // LARGE_PROFILE["statements"]),
            loop_depth=LARGE_PROFILE["loop_depth"],
        )
        function = generate_function("dense_smoke", profile, rng=args.seed)
        baseline = Pipeline(
            PipelineSpec(allocator="NL", target="st231", registers=8, check="off")
        ).run(function)
        overhead = measure_check_overhead(
            statements=min(args.statements, 240), seed=args.seed, repeat=args.repeat
        )
        telemetry = measure_telemetry_overhead(
            statements=min(args.statements, 240), seed=args.seed, repeat=args.repeat
        )
        payload = {
            "statements": args.statements,
            "seed": args.seed,
            "dense_front_end": {
                "stages": list(stages),
                "dense_seconds": round(dense_seconds, 6),
                "reference_seconds": round(ref_seconds, 6),
                "speedup": round(speedup, 3),
            },
            "pipeline_stage_seconds_check_off": {
                stage: round(seconds, 6) for stage, seconds in baseline.timings.items()
            },
            "check_overhead": {
                "statements": min(args.statements, 240),
                "off_seconds": round(overhead["off"], 6),
                "boundaries_seconds": round(overhead["boundaries"], 6),
                "each_seconds": round(overhead["each"], 6),
                "each_overhead_ratio": round(overhead["each_overhead"], 3),
            },
            "telemetry_overhead": {
                "statements": min(args.statements, 240),
                "noop_seconds": round(telemetry["noop_seconds"], 6),
                "enabled_seconds": round(telemetry["enabled_seconds"], 6),
                "spans_per_run": telemetry["spans_per_run"],
                "per_span_seconds": round(telemetry["per_span_seconds"], 9),
                "noop_overhead_fraction": round(telemetry["noop_overhead_fraction"], 6),
            },
        }
        if service_latency is not None:
            payload["service_latency"] = service_latency
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json}")
        if args.append_history:
            from repro.telemetry.bench import append_history

            entry = append_history(args.append_history, payload)
            print(
                f"appended history entry to {args.append_history} "
                f"(recorded_at={entry['recorded_at']} git_rev={entry['git_rev']})"
            )
    if speedup < args.min_speedup:
        print(
            f"FAIL: dense kernel below the {args.min_speedup:.1f}x floor", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
