#!/usr/bin/env python3
"""Non-chordal (JIT-style) study: the layered heuristic vs linear scan.

Mirrors the paper's SPEC JVM98 / JikesRVM experiment in miniature: generate a
few "JIT methods", run the *non-SSA* pipeline (φ-web coalescing) to obtain
general interference graphs plus live intervals, and compare the layered
heuristic (LH) against the linear scans (LS, BLS), graph coloring (GC) and
the clique-relaxation optimum across register counts.

Run with::

    python examples/jit_allocation_study.py [seed]
"""

import sys

from repro.alloc import get_allocator
from repro.workloads.extraction import extract_general_problem
from repro.workloads.programs import GeneratorProfile, generate_function

ALLOCATORS = ("LS", "BLS", "GC", "LH", "Optimal")
REGISTER_COUNTS = (2, 4, 6, 8, 12, 16)
METHODS = 6


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 98
    profile = GeneratorProfile(
        statements=60, accumulators=10, loop_depth=2, reuse_probability=0.55
    )
    problems = []
    for index in range(METHODS):
        method = generate_function(f"jit_method_{index}", profile, rng=seed + index)
        problems.append(extract_general_problem(method, "jikesrvm-ia32"))

    chordal_count = sum(problem.is_chordal for problem in problems)
    print(f"generated {len(problems)} JIT methods "
          f"({len(problems) - chordal_count} with non-chordal interference graphs)")

    header = "allocator | " + " ".join(f"R={count:<4}" for count in REGISTER_COUNTS)
    print(header)
    print("-" * len(header))

    # Pre-compute the optimum per (method, register count) for normalization.
    optimal_costs = {
        (index, count): get_allocator("Optimal").allocate(problem.with_registers(count)).spill_cost
        for index, problem in enumerate(problems)
        for count in REGISTER_COUNTS
    }

    for name in ALLOCATORS:
        cells = []
        for count in REGISTER_COUNTS:
            ratios = []
            for index, problem in enumerate(problems):
                cost = get_allocator(name).allocate(problem.with_registers(count)).spill_cost
                optimum = optimal_costs[(index, count)]
                if optimum > 0:
                    ratios.append(cost / optimum)
                elif cost == 0:
                    ratios.append(1.0)
            mean = sum(ratios) / len(ratios) if ratios else float("nan")
            cells.append(f"{mean:6.3f}")
        print(f"{name:<9} | " + " ".join(cells))

    print("\n(the layered heuristic should track the optimum closely and beat")
    print(" both linear scans and graph coloring, as in the paper's Figure 14)")


if __name__ == "__main__":
    main()
