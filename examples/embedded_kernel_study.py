#!/usr/bin/env python3
"""Chordal-graph study on a synthetic embedded kernel (ST231 / ARMv7 style).

Mirrors the paper's Open64 experiments in miniature: generate a high-pressure
embedded kernel, extract its chordal interference graph through the SSA
pipeline, and compare every allocator of Figure 8-10 over a sweep of register
counts, reporting costs normalized to the optimum.

Run with::

    python examples/embedded_kernel_study.py [seed]
"""

import sys

from repro.alloc import get_allocator
from repro.targets import ARMV7_CORTEX_A8, ST231
from repro.workloads.extraction import extract_chordal_problem
from repro.workloads.programs import GeneratorProfile, generate_function

ALLOCATORS = ("GC", "NL", "FPL", "BL", "BFPL", "Optimal")
REGISTER_COUNTS = (1, 2, 4, 8, 16, 32)


def run_study(seed: int) -> None:
    profile = GeneratorProfile(statements=45, accumulators=18, loop_depth=3)
    kernel = generate_function("fir_like_kernel", profile, rng=seed)

    for target in (ST231, ARMV7_CORTEX_A8):
        problem_full = extract_chordal_problem(kernel, target)
        print(f"\n### target {target.name}: |V|={len(problem_full.graph)} "
              f"|E|={problem_full.graph.num_edges()} MaxLive={problem_full.max_pressure}")

        header = "allocator | " + " ".join(f"R={count:<4}" for count in REGISTER_COUNTS)
        print(header)
        print("-" * len(header))

        optimal_costs = {}
        for count in REGISTER_COUNTS:
            optimal_costs[count] = get_allocator("Optimal").allocate(
                problem_full.with_registers(count)
            ).spill_cost

        for name in ALLOCATORS:
            cells = []
            for count in REGISTER_COUNTS:
                cost = get_allocator(name).allocate(problem_full.with_registers(count)).spill_cost
                optimum = optimal_costs[count]
                if optimum > 0:
                    cells.append(f"{cost / optimum:6.3f}")
                else:
                    cells.append("  1.000" if cost == 0 else "    inf")
            print(f"{name:<9} | " + " ".join(cells))


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2013
    run_study(seed)


if __name__ == "__main__":
    main()
