#!/usr/bin/env python3
"""Quickstart: allocate registers for a small hand-written function.

This walks the full decoupled pipeline of the paper on a tiny program:

1. build a function with the IR builder (a loop with a few accumulators);
2. convert it to SSA and extract the weighted interference graph;
3. run the biased fixed-point layered allocator (BFPL) with a small register
   file and compare it against the exact optimum;
4. turn the allocation into a concrete register assignment and insert spill
   code for the spilled variables.

Run with::

    python examples/quickstart.py
"""

from repro.alloc import get_allocator
from repro.alloc.assignment import assign_registers
from repro.alloc.spill_code import insert_spill_code
from repro.analysis.ssa_construction import construct_ssa
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import print_function
from repro.workloads.extraction import extract_chordal_problem


def build_dot_product() -> "FunctionBuilder":
    """A dot-product-style kernel with a couple of extra accumulators."""
    fb = FunctionBuilder("dot_product", params=["n", "base_a", "base_b"])
    entry = fb.new_block("entry")
    header = fb.new_block("header")
    body = fb.new_block("body")
    done = fb.new_block("done")

    fb.set_block(entry)
    fb.copy("i", 0)
    fb.copy("sum", 0)
    fb.copy("sum_sq", 0)
    fb.copy("checksum", 0)
    fb.br(header)

    fb.set_block(header)
    fb.cmp("cond", "i", "n")
    fb.cbr("cond", body, done)

    fb.set_block(body)
    fb.add("addr_a", "base_a", "i")
    fb.add("addr_b", "base_b", "i")
    fb.load("value_a", "addr_a")
    fb.load("value_b", "addr_b")
    fb.mul("product", "value_a", "value_b")
    fb.add("sum", "sum", "product")
    fb.mul("square", "product", "product")
    fb.add("sum_sq", "sum_sq", "square")
    fb.add("checksum", "checksum", "value_a")
    fb.add("i", "i", 1)
    fb.br(header)

    fb.set_block(done)
    fb.add("result", "sum", "sum_sq")
    fb.add("result2", "result", "checksum")
    fb.ret("result2")
    return fb


def main() -> None:
    function = build_dot_product().finish()
    print("=== input function (not in SSA) ===")
    print(print_function(function))

    ssa = construct_ssa(function)
    print("\n=== after SSA construction ===")
    print(print_function(ssa))

    # Extract the weighted interference graph for the ST231 target, then
    # pretend we only have 4 allocatable registers to force some spilling.
    problem = extract_chordal_problem(function, "st231").with_registers(4)
    print(
        f"\ninterference graph: |V|={len(problem.graph)} |E|={problem.graph.num_edges()} "
        f"chordal={problem.is_chordal} MaxLive={problem.max_pressure}"
    )

    bfpl = get_allocator("BFPL").allocate(problem)
    optimal = get_allocator("Optimal").allocate(problem)
    print(f"\nBFPL    : spilled {sorted(bfpl.spilled)} (cost {bfpl.spill_cost:.1f})")
    print(f"Optimal : spilled {sorted(optimal.spilled)} (cost {optimal.spill_cost:.1f})")

    mapping = assign_registers(problem.graph, bfpl.allocated, problem.num_registers)
    print("\nregister assignment (BFPL):")
    for variable in sorted(mapping):
        print(f"  {variable:>14} -> {mapping[variable]}")

    rewritten, stats = insert_spill_code(ssa, [str(v) for v in bfpl.spilled])
    print(
        f"\nspill code inserted: {stats['stores']} stores, {stats['loads']} loads "
        f"({rewritten.num_instructions() - ssa.num_instructions()} extra instructions)"
    )


if __name__ == "__main__":
    main()
