#!/usr/bin/env python3
"""Walk through the worked examples of the paper (Figures 2, 5, 6 and 7).

Run with::

    python examples/paper_examples.py
"""

from repro.alloc import get_allocator
from repro.alloc.problem import AllocationProblem
from repro.graphs.chordal import is_perfect_elimination_order
from repro.graphs.cliques import maximal_cliques
from repro.graphs.graph import Graph
from repro.graphs.stable_set import maximum_weighted_stable_set


def figure2_graph() -> Graph:
    """Counter-example to spill-set inclusion (weights adapted, see DESIGN.md)."""
    graph = Graph()
    for name, weight in dict(a=3, b=2, c=1, d=2, e=3).items():
        graph.add_vertex(name, weight)
    for u, v in [("a", "b"), ("b", "c"), ("b", "d"), ("c", "d"), ("d", "e")]:
        graph.add_edge(u, v)
    return graph


def figure4_graph() -> Graph:
    """The chordal graph of Figures 4/5/6."""
    graph = Graph()
    for name, weight in dict(a=1, b=2, c=2, d=5, e=2, f=6, g=1).items():
        graph.add_vertex(name, weight)
    edges = [
        ("a", "d"), ("a", "f"), ("d", "f"), ("d", "e"), ("e", "f"), ("c", "d"),
        ("c", "e"), ("b", "c"), ("b", "e"), ("b", "g"), ("c", "g"), ("e", "g"),
    ]
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def figure7_graph() -> Graph:
    """The 6-vertex graph motivating the fixed-point iteration."""
    graph = Graph()
    for name, weight in dict(a=4, b=2, c=1, d=5, e=1, f=1).items():
        graph.add_vertex(name, weight)
    edges = [
        ("a", "d"), ("a", "f"), ("d", "f"), ("b", "c"), ("b", "e"),
        ("c", "e"), ("c", "d"), ("d", "e"), ("e", "f"),
    ]
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def show_figure2() -> None:
    print("=" * 72)
    print("Figure 2 - optimal spill sets are not monotone in the register count")
    print("=" * 72)
    graph = figure2_graph()
    optimal = get_allocator("Optimal")
    for registers in (1, 2):
        result = optimal.allocate(AllocationProblem(graph=graph, num_registers=registers))
        print(f"  R={registers}: optimal spill set = {sorted(result.spilled)} (cost {result.spill_cost})")
    print("  -> the R=2 spill set is not contained in the R=1 spill set.\n")


def show_figure5() -> None:
    print("=" * 72)
    print("Figure 5 - Frank's algorithm on the Figure 4 graph")
    print("=" * 72)
    graph = figure4_graph()
    peo = list("afdebgc")
    print(f"  perfect elimination order from the paper: {peo}")
    print(f"  is it a valid PEO? {is_perfect_elimination_order(graph, peo)}")
    stable = maximum_weighted_stable_set(graph, peo=peo)
    print(f"  maximum weighted stable set: {sorted(stable)} (weight {graph.total_weight(stable)})\n")


def show_figure6() -> None:
    print("=" * 72)
    print("Figure 6 - why biasing the weights helps (two registers)")
    print("=" * 72)
    graph = figure4_graph()
    problem = AllocationProblem(graph=graph, num_registers=2)
    for name in ("NL", "BL", "Optimal"):
        result = get_allocator(name).allocate(problem)
        print(
            f"  {name:>7}: allocated {sorted(result.allocated)}, "
            f"spilled {sorted(result.spilled)} (cost {result.spill_cost})"
        )
    print("  -> BL prefers the stable set {c, f}, which removes more interference.\n")


def show_figure7() -> None:
    print("=" * 72)
    print("Figure 7 - why iterating to a fixed point helps (two registers)")
    print("=" * 72)
    graph = figure7_graph()
    print(f"  maximal cliques: {[sorted(c) for c in maximal_cliques(graph)]}")
    problem = AllocationProblem(graph=graph, num_registers=2)
    for name in ("NL", "FPL", "BFPL", "Optimal"):
        result = get_allocator(name).allocate(problem)
        print(
            f"  {name:>7}: allocated {sorted(result.allocated)}, "
            f"spilled {sorted(result.spilled)} (cost {result.spill_cost})"
        )
    print("  -> once a and d are allocated, f's clique {a, d, f} is saturated,")
    print("     but c or e can still be allocated by the fixed-point phase.\n")


def main() -> None:
    show_figure2()
    show_figure5()
    show_figure6()
    show_figure7()


if __name__ == "__main__":
    main()
