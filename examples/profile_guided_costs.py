#!/usr/bin/env python3
"""Profile-guided spill costs and measured spill overhead.

The paper's evaluation (like most compilers) uses *static* frequency
estimates (10^loop-depth) to weigh spill decisions.  This example shows the
profiling path this library adds on top:

1. execute a kernel with the IR interpreter to measure real block frequencies;
2. recompute the spill costs from the measured frequencies;
3. allocate with both cost models and compare the *measured* spill overhead
   (extra loads/stores actually executed after spill-code insertion).

Run with::

    python examples/profile_guided_costs.py
"""

from repro.alloc import get_allocator
from repro.alloc.problem import AllocationProblem
from repro.analysis.interference import build_interference_graph
from repro.analysis.profile import (
    default_argument_sets,
    measure_spill_overhead,
    profile_block_frequencies,
    profiled_spill_costs,
)
from repro.analysis.spill_costs import spill_costs
from repro.analysis.ssa_construction import construct_ssa
from repro.workloads.programs import GeneratorProfile, generate_function

REGISTERS = 6


def main() -> None:
    profile = GeneratorProfile(statements=35, accumulators=10, loop_depth=2)
    function = generate_function("profiled_kernel", profile, rng=4242)
    ssa = construct_ssa(function)
    arguments = default_argument_sets(ssa, runs=3, seed=7, low=2, high=32)

    measured = profile_block_frequencies(ssa, argument_sets=arguments)
    print("measured block frequencies (top 5 hottest blocks):")
    for label, frequency in sorted(measured.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {label:>12}: {frequency:8.1f} executions")

    static_costs = spill_costs(ssa)
    dynamic_costs = profiled_spill_costs(ssa, argument_sets=arguments)

    allocator = get_allocator("BFPL")
    results = {}
    for label, costs in (("static", static_costs), ("profiled", dynamic_costs)):
        graph = build_interference_graph(ssa, weights=costs)
        problem = AllocationProblem(graph=graph, num_registers=REGISTERS, name=label)
        allocation = allocator.allocate(problem)
        overhead = measure_spill_overhead(
            ssa, [str(v) for v in allocation.spilled], argument_sets=arguments
        )
        results[label] = (allocation, overhead)
        print(
            f"\n{label} cost model: spilled {allocation.num_spilled} variables, "
            f"static cost {allocation.spill_cost:.1f}"
        )
        print(
            f"  measured overhead: {overhead.extra_memory_operations} extra loads/stores, "
            f"{overhead.extra_steps} extra executed instructions"
        )

    static_overhead = results["static"][1].extra_memory_operations
    profiled_overhead = results["profiled"][1].extra_memory_operations
    if profiled_overhead <= static_overhead:
        print("\nprofile-guided costs matched or beat the static estimate, as expected")
    else:
        print("\nstatic estimate happened to win on this input set (small kernels can tie)")


if __name__ == "__main__":
    main()
